// Structured flow tracing (Chrome trace_event JSON).
//
// A process-wide, always-compiled tracer behind a single relaxed atomic
// flag: every instrumentation site costs one load + branch when tracing is
// off, so the layer can stay in release builds.  When enabled
// (`drdesync --trace out.trace.json` or the DESYNC_TRACE environment
// variable), instrumented code records duration spans (begin/end pairs),
// counter samples and instant markers into per-thread buffers; finish()
// drains every buffer once and writes one Chrome `trace_event` JSON file,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Event names and categories are documented in docs/trace-format.md.
//
// Determinism contract: tracing never touches flow state — it only reads
// clocks and appends to trace buffers — so flow outputs (Verilog, SDC,
// BLIF, report values other than the "trace" summary object) are
// byte-identical with tracing on or off, at any --jobs setting
// (tests/trace_test.cpp and tests/determinism_test.cpp enforce this).
// No randomness is used anywhere.
//
// Buffering: each thread appends to its own chunked buffer; publication is
// a single-producer/single-consumer release-store of the chunk fill count
// (and of the next-chunk pointer), so recording takes no lock and finish()
// (the only consumer, called when no parallel section is active) attaches
// with acquire loads.  Buffers of pool worker threads survive the threads
// themselves; the registry owns them for the life of the process and is
// intentionally leaked, so trace calls arbitrarily late in process
// teardown (a pool worker parked past main, a static destructor) are safe
// no-ops — they never touch destroyed state.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace desync::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while tracing is active.  The fast path of every instrumentation
/// site; a relaxed load so the disabled cost is one branch.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Starts tracing; events recorded from now on are written to `path` by
/// finish().  Restartable: a start() after a finish() begins a fresh
/// trace (already-drained events are never re-emitted).
void start(std::string path);

/// Starts tracing to $DESYNC_TRACE if that variable is set (and non-empty)
/// and tracing is not already active.  No-op otherwise.
void startFromEnv();

/// Post-trace statistics, fed into `--report` JSON as the "trace" object
/// (see FlowReport::setTraceSummary).
struct Summary {
  bool enabled = false;         ///< false: finish() without start()
  std::string file;             ///< the written trace file path
  std::uint64_t events = 0;     ///< emitted trace events (excl. metadata)
  std::uint64_t spans = 0;      ///< completed duration spans
  std::uint64_t counter_events = 0;
  int worker_tracks = 0;        ///< pool worker threads with a track
  /// Share of the flow's parallel-section time the pool workers spent
  /// running iterations: sum(worker run spans) /
  /// (worker_tracks * sum(caller parallel_for spans)).  Negative when no
  /// parallel section was traced.
  double worker_utilization_pct = -1.0;
  /// Per-pass self time: the "pass"-category span's duration minus the
  /// time covered by spans nested directly inside it on the same track.
  std::vector<std::pair<std::string, double>> pass_self_ms;
};

/// Stops tracing, drains every thread buffer exactly once, writes the
/// Chrome trace JSON file and returns the summary.  Must not be called
/// while a parallel section is running.  Returns a disabled Summary when
/// tracing was never started.
Summary finish();

/// RAII duration span on the calling thread's track: records a "B" event
/// at construction and the matching "E" at destruction.  `name` is copied
/// (truncated to an implementation limit); `cat` must be a string literal.
/// Free when tracing is disabled.
class Span {
 public:
  Span(std::string_view name, const char* cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
};

/// RAII per-request track: switches the calling thread onto a fresh,
/// separately-registered track named `name` for the scope's lifetime, then
/// back to the thread's previous track.  drdesyncd wraps each request in
/// one of these so every request owns a named track in the combined trace
/// even when handler threads are reused; the request's events are drained
/// by the next finish() like any other track's.  Constructed while tracing
/// is disabled it is a no-op (no track is allocated).  Spans must not
/// straddle the scope boundary: open spans belong to the track they began
/// on.
class TrackScope {
 public:
  explicit TrackScope(std::string name);
  ~TrackScope();
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;

 private:
  void* saved_ = nullptr;
  bool active_ = false;
};

/// Records an already-completed span from explicit timestamps (both from
/// timestampUs()).  Used where the span must only be recorded once its end
/// is known — e.g. a pool worker's queue wait, which would otherwise sit
/// open (and unread) in a blocked thread's buffer at drain time.
void completedSpan(std::string_view name, const char* cat, double begin_us,
                   double end_us);

/// Counter sample ("C" event): the named series takes `value` at now.
void counter(std::string_view name, double value);

/// Instant marker ("i" event).
void instant(std::string_view name, const char* cat);

/// Microseconds on the tracer's clock (steady, process-wide); pair with
/// completedSpan.  Valid whether or not tracing is enabled.
[[nodiscard]] double timestampUs();

/// Names the calling thread's track (Chrome "thread_name" metadata).  The
/// pool labels its workers "worker-1".."worker-N"; the flow's caller
/// thread is "flow".  Safe to call with tracing disabled (the name sticks
/// and is emitted if tracing is active at drain time and the track has a
/// name or events).
void setThreadName(std::string name);

/// Name of the innermost span that was destroyed while an exception was
/// unwinding through it on this thread — i.e. where the most recent
/// failure happened.  Empty when no span unwound.  Reset when a new span
/// starts after the unwind.
[[nodiscard]] std::string lastUnwoundSpan();

/// Peak resident set size of the process in bytes (0 where unsupported).
/// Exposed for pass-boundary counter sampling.
[[nodiscard]] std::uint64_t peakRssBytes();

}  // namespace desync::trace
