#include "trace/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace desync::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Event name capacity; longer names are truncated.  Sized for the flow's
/// longest pass/counter names with headroom.
constexpr std::size_t kNameCap = 48;

struct Event {
  enum class Kind : std::uint8_t { kBegin, kEnd, kCounter, kInstant };
  Kind kind;
  char name[kNameCap];
  const char* cat;  ///< string literal ("" for counters)
  double ts_us;
  double value;  ///< counters only
};

/// One fixed-size buffer segment.  The owning thread fills `ev` in order
/// and publishes progress through `count` (release); the drain thread
/// reads `count` with acquire and only touches ev[0..count).  `next` is
/// published the same way when the owner starts a new chunk.
struct Chunk {
  static constexpr std::size_t kCapacity = 2048;
  Event ev[kCapacity];
  std::atomic<std::uint32_t> count{0};
  std::atomic<Chunk*> next{nullptr};
};

/// Per-thread event stream.  Owned by the registry (never freed before
/// process exit) so a pool thread's events survive the thread.  All
/// `drained_*` fields belong to the drain side exclusively.
struct ThreadBuf {
  int tid = 0;
  std::string name;  // guarded by the registry mutex
  Chunk* head = nullptr;
  Chunk* tail = nullptr;  // owner-only

  // Drain-side watermark: everything up to (drained_chunk, drained_index)
  // was emitted by a previous finish() and belongs to an older trace.
  Chunk* drained_chunk = nullptr;
  std::uint32_t drained_index = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;  // guarded by mutex
  int next_tid = 0;                              // guarded by mutex
  std::string path;                              // guarded by mutex
  double t0_us = 0.0;                            // trace start timestamp
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives pool threads
  return *r;
}

thread_local ThreadBuf* tls_buf = nullptr;
thread_local std::string tls_unwound_span;
thread_local bool tls_unwind_recorded = false;

ThreadBuf& threadBuf() {
  if (tls_buf == nullptr) {
    auto buf = std::make_unique<ThreadBuf>();
    auto* chunk = new Chunk;
    buf->head = buf->tail = chunk;
    buf->drained_chunk = chunk;
    tls_buf = buf.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buf->tid = reg.next_tid++;
    reg.bufs.push_back(std::move(buf));
  }
  return *tls_buf;
}

/// Appends one event to the calling thread's stream (lock-free; the only
/// synchronization is the release publication of the fill count).
void record(Event::Kind kind, std::string_view name, const char* cat,
            double ts_us, double value) {
  ThreadBuf& buf = threadBuf();
  Chunk* tail = buf.tail;
  std::uint32_t n = tail->count.load(std::memory_order_relaxed);
  if (n == Chunk::kCapacity) {
    auto* fresh = new Chunk;
    tail->next.store(fresh, std::memory_order_release);
    buf.tail = tail = fresh;
    n = 0;
  }
  Event& e = tail->ev[n];
  e.kind = kind;
  const std::size_t len = std::min(name.size(), kNameCap - 1);
  std::memcpy(e.name, name.data(), len);
  e.name[len] = '\0';
  e.cat = cat;
  e.ts_us = ts_us;
  e.value = value;
  tail->count.store(n + 1, std::memory_order_release);
}

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

/// Everything finish() knows about one drained track.
struct Track {
  int tid = 0;
  std::string name;
  std::vector<Event> events;  // drained in append order, then ts-sorted
};

/// Matches this track's B/E pairs and computes, per completed span, its
/// duration and the time covered by directly nested spans.
struct SpanAccum {
  double begin_us = 0.0;
  double child_us = 0.0;
  std::string name;
  std::string cat;
};

}  // namespace

void start(std::string path) {
  ThreadBuf& buf = threadBuf();  // the flow runs on the starting thread
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.path = std::move(path);
    reg.t0_us = nowUs();
    if (buf.name.empty()) buf.name = "flow";
  }
  detail::g_enabled.store(true, std::memory_order_release);
}

void startFromEnv() {
  if (enabled()) return;
  const char* env = std::getenv("DESYNC_TRACE");
  if (env != nullptr && env[0] != '\0') start(env);
}

Span::Span(std::string_view name, const char* cat) : active_(enabled()) {
  if (!active_) return;
  tls_unwind_recorded = false;
  record(Event::Kind::kBegin, name, cat, nowUs(), 0.0);
}

Span::~Span() {
  if (!active_) return;
  const double ts = nowUs();
  ThreadBuf& buf = threadBuf();
  // The innermost span an in-flight exception unwinds through is where the
  // failure happened; remember it for post-mortem error reports.
  Chunk* tail = buf.tail;
  const std::uint32_t n = tail->count.load(std::memory_order_relaxed);
  if (std::uncaught_exceptions() > 0 && !tls_unwind_recorded) {
    // Find this span's matching kBegin: the last unmatched one.
    // Cheap scan of the current chunk is enough for a diagnostic; fall
    // back to "?" when the begin rolled into a previous chunk.
    int depth = 0;
    tls_unwound_span = "?";
    for (std::uint32_t i = n; i > 0; --i) {
      const Event& e = tail->ev[i - 1];
      if (e.kind == Event::Kind::kEnd) ++depth;
      if (e.kind == Event::Kind::kBegin) {
        if (depth == 0) {
          tls_unwound_span = e.name;
          break;
        }
        --depth;
      }
    }
    tls_unwind_recorded = true;
  }
  record(Event::Kind::kEnd, "", "", ts, 0.0);
}

TrackScope::TrackScope(std::string name) {
  if (!enabled()) return;  // no-op scope: no track allocated
  active_ = true;
  saved_ = tls_buf;
  tls_buf = nullptr;            // next threadBuf() registers a fresh track
  setThreadName(std::move(name));
}

TrackScope::~TrackScope() {
  if (!active_) return;
  tls_buf = static_cast<ThreadBuf*>(saved_);
}

void completedSpan(std::string_view name, const char* cat, double begin_us,
                   double end_us) {
  if (!enabled()) return;
  // Both events are published with ONE release store, so a concurrent
  // drain (finish() racing a pool worker that claimed no iterations and
  // therefore never synchronizes through the job's done counter) sees the
  // pair completely or not at all — never an unbalanced begin.
  ThreadBuf& buf = threadBuf();
  Chunk* tail = buf.tail;
  std::uint32_t n = tail->count.load(std::memory_order_relaxed);
  if (n + 2 > Chunk::kCapacity) {
    auto* fresh = new Chunk;
    tail->next.store(fresh, std::memory_order_release);
    buf.tail = tail = fresh;
    n = 0;
  }
  Event& b = tail->ev[n];
  b.kind = Event::Kind::kBegin;
  const std::size_t len = std::min(name.size(), kNameCap - 1);
  std::memcpy(b.name, name.data(), len);
  b.name[len] = '\0';
  b.cat = cat;
  b.ts_us = begin_us;
  b.value = 0.0;
  Event& e = tail->ev[n + 1];
  e.kind = Event::Kind::kEnd;
  e.name[0] = '\0';
  e.cat = "";
  e.ts_us = end_us;
  e.value = 0.0;
  tail->count.store(n + 2, std::memory_order_release);
}

void counter(std::string_view name, double value) {
  if (!enabled()) return;
  record(Event::Kind::kCounter, name, "", nowUs(), value);
}

void instant(std::string_view name, const char* cat) {
  if (!enabled()) return;
  record(Event::Kind::kInstant, name, cat, nowUs(), 0.0);
}

double timestampUs() { return nowUs(); }

void setThreadName(std::string name) {
  ThreadBuf& buf = threadBuf();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  buf.name = std::move(name);
}

std::string lastUnwoundSpan() { return tls_unwound_span; }

std::uint64_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

Summary finish() {
  Summary summary;
  if (!enabled()) return summary;
  detail::g_enabled.store(false, std::memory_order_release);

  Registry& reg = registry();
  std::vector<Track> tracks;
  double t0_us = 0.0;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    t0_us = reg.t0_us;
    path = reg.path;
    for (const auto& buf : reg.bufs) {
      Track track;
      track.tid = buf->tid;
      track.name = buf->name;
      // Drain from the watermark: events recorded before the most recent
      // start() were already written to an earlier trace file.
      Chunk* chunk = buf->drained_chunk;
      std::uint32_t index = buf->drained_index;
      while (chunk != nullptr) {
        const std::uint32_t n = chunk->count.load(std::memory_order_acquire);
        for (std::uint32_t i = index; i < n; ++i) {
          track.events.push_back(chunk->ev[i]);
        }
        Chunk* next = chunk->next.load(std::memory_order_acquire);
        if (next == nullptr) {
          buf->drained_chunk = chunk;
          buf->drained_index = n;
          break;
        }
        chunk = next;
        index = 0;
      }
      if (!track.events.empty() || !track.name.empty()) {
        tracks.push_back(std::move(track));
      }
    }
  }

  // Buffer order is append order, which is not timestamp order:
  // completedSpan() pairs (a worker's parallel_run, a queue wait) are
  // appended once the span ENDS, after the events of everything that ran
  // inside it.  Spans on one track are temporally well-nested, so a stable
  // per-track sort by timestamp restores both monotonic order and correct
  // LIFO begin/end pairing.
  for (Track& track : tracks) {
    std::stable_sort(
        track.events.begin(), track.events.end(),
        [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });
  }

  summary.enabled = true;
  summary.file = path;

  // Span statistics: per-pass self time and worker utilization.
  double parallel_for_us = 0.0;  // caller-side section time
  double worker_run_us = 0.0;    // worker-side busy time
  for (const Track& track : tracks) {
    const bool is_worker = track.name.rfind("worker-", 0) == 0;
    if (is_worker) ++summary.worker_tracks;
    std::vector<SpanAccum> stack;
    for (const Event& e : track.events) {
      switch (e.kind) {
        case Event::Kind::kBegin: {
          SpanAccum s;
          s.begin_us = e.ts_us;
          s.name = e.name;
          s.cat = e.cat;
          stack.push_back(std::move(s));
          break;
        }
        case Event::Kind::kEnd: {
          if (stack.empty()) break;  // unmatched E: ignore
          SpanAccum s = std::move(stack.back());
          stack.pop_back();
          const double dur = e.ts_us - s.begin_us;
          ++summary.spans;
          if (!stack.empty()) stack.back().child_us += dur;
          if (s.cat == "pass") {
            summary.pass_self_ms.emplace_back(
                s.name, (dur - s.child_us) / 1000.0);
          } else if (s.cat == "parallel") {
            if (s.name == "parallel_for") parallel_for_us += dur;
            if (is_worker && s.name == "parallel_run") worker_run_us += dur;
          }
          break;
        }
        case Event::Kind::kCounter:
          ++summary.counter_events;
          break;
        case Event::Kind::kInstant:
          break;
      }
    }
    summary.events += track.events.size();
  }
  if (summary.worker_tracks > 0 && parallel_for_us > 0.0) {
    summary.worker_utilization_pct =
        100.0 * worker_run_us / (summary.worker_tracks * parallel_for_us);
  }

  // Chrome trace_event JSON ("JSON Object Format"): metadata first, then
  // each track's events in timestamp order (sorted above);
  // Perfetto/about:tracing sort across tracks globally.
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "trace: cannot write '%s'\n", path.c_str());
    return summary;
  }
  out.precision(3);
  out << std::fixed;
  out << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&]() -> std::ofstream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };
  sep() << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"ts\": 0, \"args\": {\"name\": \"drdesync\"}}";
  for (const Track& track : tracks) {
    if (track.name.empty()) continue;
    sep() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
          << track.tid << ", \"ts\": 0, \"args\": {\"name\": \""
          << jsonEscape(track.name) << "\"}}";
  }
  for (const Track& track : tracks) {
    // Names for E events: replay the B/E pairing so each end event carries
    // its begin's name (chrome requires matching names on B/E pairs).
    std::vector<const Event*> stack;
    for (const Event& e : track.events) {
      const double ts = e.ts_us - t0_us;
      switch (e.kind) {
        case Event::Kind::kBegin:
          stack.push_back(&e);
          sep() << "{\"name\": \"" << jsonEscape(e.name) << "\", \"cat\": \""
                << e.cat << "\", \"ph\": \"B\", \"pid\": 1, \"tid\": "
                << track.tid << ", \"ts\": " << ts << "}";
          break;
        case Event::Kind::kEnd: {
          if (stack.empty()) break;
          const Event* b = stack.back();
          stack.pop_back();
          sep() << "{\"name\": \"" << jsonEscape(b->name) << "\", \"cat\": \""
                << b->cat << "\", \"ph\": \"E\", \"pid\": 1, \"tid\": "
                << track.tid << ", \"ts\": " << ts << "}";
          break;
        }
        case Event::Kind::kCounter:
          sep() << "{\"name\": \"" << jsonEscape(e.name)
                << "\", \"ph\": \"C\", \"pid\": 1, \"tid\": " << track.tid
                << ", \"ts\": " << ts << ", \"args\": {\"value\": " << e.value
                << "}}";
          break;
        case Event::Kind::kInstant:
          sep() << "{\"name\": \"" << jsonEscape(e.name) << "\", \"cat\": \""
                << e.cat << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, "
                   "\"tid\": "
                << track.tid << ", \"ts\": " << ts << "}";
          break;
      }
    }
  }
  out << "\n]}\n";
  return summary;
}

}  // namespace desync::trace
