// Design-for-Testability: scan insertion (thesis §4.3).
//
// After synthesis, every flip-flop is substituted by its scan-equivalent
// cell and the scan inputs are stitched into a single chain driven by new
// top-level ports (scan_in, scan_en, scan_out).  Desynchronization then
// converts the scan flip-flops to latch pairs with a scan mux (Fig 3.1a);
// flow-equivalence guarantees the same test vectors still apply (§2.1).
#pragma once

#include <string>
#include <vector>

#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::dft {

struct ScanOptions {
  std::string scan_in_port = "scan_in";
  std::string scan_en_port = "scan_en";
  std::string scan_out_port = "scan_out";
};

struct ScanResult {
  std::size_t chain_length = 0;
  /// Flip-flop cell names in chain order (scan_in side first).
  std::vector<std::string> chain;
};

/// Replaces every flip-flop with its scan equivalent and stitches the
/// chain.  The scan cell for a flip-flop type is located in the library by
/// matching the sequential classification (same async controls) plus scan
/// pins.  Throws when a flip-flop has no scan counterpart.
ScanResult insertScan(netlist::Module& module,
                      const liberty::Gatefile& gatefile,
                      const ScanOptions& options = {});

}  // namespace desync::dft
