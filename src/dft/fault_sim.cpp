#include "dft/fault_sim.h"

#include "liberty/bound.h"
#include "sim/bitsim/bitsim.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace desync::dft {

using sim::Val;

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Runs the full scan test on one machine; returns the scan-out stream.
std::vector<Val> scanTest(sim::Simulator& s, const FaultSimOptions& opt,
                          std::size_t chain_len,
                          const std::vector<std::vector<bool>>& patterns) {
  const sim::Time half = sim::nsToPs(opt.period_ns / 2);
  auto pulse = [&]() {
    s.setInput(opt.clock_port, Val::k1);
    s.run(s.now() + half);
    s.setInput(opt.clock_port, Val::k0);
    s.run(s.now() + half);
  };

  std::vector<Val> stream;
  s.setInput(opt.clock_port, Val::k0);
  s.setInput(opt.reset_port,
             opt.reset_active_low ? Val::k0 : Val::k1);
  s.setInput(opt.scan.scan_en_port, Val::k0);
  s.setInput(opt.scan.scan_in_port, Val::k0);
  s.run(s.now() + 2 * half);
  s.setInput(opt.reset_port,
             opt.reset_active_low ? Val::k1 : Val::k0);
  s.run(s.now() + half);

  for (const std::vector<bool>& pattern : patterns) {
    // Shift in.
    s.setInput(opt.scan.scan_en_port, Val::k1);
    for (std::size_t i = 0; i < chain_len; ++i) {
      s.setInput(opt.scan.scan_in_port, sim::fromBool(pattern[i]));
      pulse();
    }
    // One functional capture cycle.
    s.setInput(opt.scan.scan_en_port, Val::k0);
    pulse();
    // Shift out (zeros in).
    s.setInput(opt.scan.scan_en_port, Val::k1);
    s.setInput(opt.scan.scan_in_port, Val::k0);
    for (std::size_t i = 0; i < chain_len; ++i) {
      stream.push_back(s.value(opt.scan.scan_out_port));
      pulse();
    }
  }
  return stream;
}

/// Same scan protocol on the bit-parallel engine.  `lane_faults[l]` is the
/// fault forced in lane l (nullptr = fault-free machine); returns the
/// scan-out sample words, one per stream position, for all lanes at once.
std::vector<sim::LaneWord> scanTestLanes(
    const sim::bitsim::BitPlan& plan, const FaultSimOptions& opt,
    std::size_t chain_len, const std::vector<std::vector<bool>>& patterns,
    const std::vector<const Fault*>& lane_faults) {
  sim::bitsim::BitSim s(plan, /*record_captures=*/false);
  for (std::size_t l = 0; l < lane_faults.size(); ++l) {
    if (lane_faults[l] == nullptr) continue;
    s.forceNet(lane_faults[l]->net, static_cast<unsigned>(l),
               lane_faults[l]->stuck1 ? Val::k1 : Val::k0);
  }
  // Reset phase: the event protocol holds the clock low throughout, so it
  // amounts to two settle points (reset asserted, then released).
  s.set(opt.reset_port, opt.reset_active_low ? Val::k0 : Val::k1);
  s.set(opt.scan.scan_en_port, Val::k0);
  s.set(opt.scan.scan_in_port, Val::k0);
  s.settle();
  s.set(opt.reset_port, opt.reset_active_low ? Val::k1 : Val::k0);
  s.settle();

  std::vector<sim::LaneWord> stream;
  for (const std::vector<bool>& pattern : patterns) {
    s.set(opt.scan.scan_en_port, Val::k1);
    for (std::size_t i = 0; i < chain_len; ++i) {
      s.set(opt.scan.scan_in_port, sim::fromBool(pattern[i]));
      s.cycle();
    }
    s.set(opt.scan.scan_en_port, Val::k0);
    s.cycle();
    s.set(opt.scan.scan_en_port, Val::k1);
    s.set(opt.scan.scan_in_port, Val::k0);
    for (std::size_t i = 0; i < chain_len; ++i) {
      s.settle();  // the sample happens before the next edge
      stream.push_back(s.word(opt.scan.scan_out_port));
      s.cycle();
    }
  }
  return stream;
}

/// 64-way campaign: lane 0 carries the fault-free machine, lanes 1..63 one
/// fault each, so every pass resolves 63 faults.  Throws sim::SimError
/// (e.g. bitsim::BitSimError) when the design is outside the cycle model.
void runCampaignBitsim(const liberty::BoundModule& bound,
                       const FaultSimOptions& options,
                       std::size_t chain_len,
                       const std::vector<std::vector<bool>>& patterns,
                       std::vector<Fault>& faults) {
  sim::bitsim::PlanOptions po;
  po.clock_port = options.clock_port;
  const sim::bitsim::BitPlan plan = sim::bitsim::compilePlan(bound, po);
  constexpr std::size_t per_pass = sim::kLanes - 1;
  for (std::size_t f0 = 0; f0 < faults.size(); f0 += per_pass) {
    trace::Span span("bitsim_faults", "dft");
    const std::size_t cnt = std::min(per_pass, faults.size() - f0);
    std::vector<const Fault*> lane_faults(cnt + 1, nullptr);
    for (std::size_t j = 0; j < cnt; ++j) lane_faults[j + 1] = &faults[f0 + j];
    const std::vector<sim::LaneWord> stream =
        scanTestLanes(plan, options, chain_len, patterns, lane_faults);
    for (std::size_t j = 0; j < cnt; ++j) {
      Fault& f = faults[f0 + j];
      for (const sim::LaneWord& w : stream) {
        const Val golden = sim::laneGet(w, 0);
        const Val out = sim::laneGet(w, static_cast<unsigned>(j + 1));
        if (sim::isKnown(out) && sim::isKnown(golden) && out != golden) {
          f.detected = true;
          break;
        }
      }
    }
  }
}

}  // namespace

FaultSimResult runScanFaultSim(const netlist::Module& module,
                               const liberty::Gatefile& gatefile,
                               const ScanResult& scan,
                               const FaultSimOptions& options) {
  FaultSimResult result;

  // Pattern generation (deterministic).
  for (int p = 0; p < options.n_patterns; ++p) {
    std::vector<bool> pattern;
    for (std::size_t i = 0; i < scan.chain_length; ++i) {
      pattern.push_back(
          (splitmix64(options.seed ^ (static_cast<std::uint64_t>(p) << 32 |
                                      i)) &
           1u) != 0);
    }
    result.patterns.push_back(std::move(pattern));
  }

  // Fault list: stuck-at-0/1 per net (skip constants / scan control nets
  // where a fault would stop the test infrastructure rather than the
  // logic — real ATPG treats chain faults separately).
  std::vector<Fault> faults;
  module.forEachNet([&](netlist::NetId id) {
    const netlist::Net& n = module.net(id);
    if (n.driver.isConst() || n.sinks.empty()) return;
    std::string name(module.netName(id));
    if (name == options.scan.scan_en_port ||
        name == options.clock_port || name == options.reset_port) {
      return;
    }
    faults.push_back(Fault{name, false, false});
    faults.push_back(Fault{name, true, false});
  });
  if (options.max_faults > 0 && faults.size() > options.max_faults) {
    std::vector<Fault> sampled;
    const std::size_t step = faults.size() / options.max_faults + 1;
    for (std::size_t i = 0; i < faults.size(); i += step) {
      sampled.push_back(faults[i]);
    }
    faults = std::move(sampled);
  }

  bool simulated = false;
  if (options.engine == sim::SyncEngine::kBitsim) {
    try {
      const liberty::BoundModule bound(module, gatefile);
      runCampaignBitsim(bound, options, scan.chain_length, result.patterns,
                        faults);
      simulated = true;
    } catch (const sim::SimError&) {
      // Outside the cycle model: rerun the whole campaign on the event
      // engine so the detected flags stay engine-independent.
      for (Fault& f : faults) f.detected = false;
    }
  }
  if (!simulated) {
    // Golden machine.
    std::vector<Val> golden;
    {
      sim::SimOptions so;
      so.record_captures = false;
      so.count_toggles = false;
      sim::Simulator s(module, gatefile, so);
      golden = scanTest(s, options, scan.chain_length, result.patterns);
    }
    for (Fault& f : faults) {
      sim::SimOptions so;
      so.record_captures = false;
      so.count_toggles = false;
      sim::Simulator s(module, gatefile, so);
      s.forceNet(f.net, f.stuck1 ? Val::k1 : Val::k0);
      std::vector<Val> out =
          scanTest(s, options, scan.chain_length, result.patterns);
      for (std::size_t i = 0; i < out.size() && i < golden.size(); ++i) {
        if (sim::isKnown(out[i]) && sim::isKnown(golden[i]) &&
            out[i] != golden[i]) {
          f.detected = true;
          break;
        }
      }
    }
  }
  for (const Fault& f : faults) {
    if (f.detected) ++result.detected;
  }
  result.total = faults.size();
  result.faults = std::move(faults);
  return result;
}

}  // namespace desync::dft
