#include "dft/scan.h"

namespace desync::dft {

using netlist::CellId;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

namespace {

/// Finds the scan-equivalent library cell of `type`: a flip-flop whose
/// classification matches in async-control structure and carries scan pins.
const liberty::LibCell* scanEquivalent(const liberty::Gatefile& gatefile,
                                       const std::string& type) {
  const liberty::SeqClass* base = gatefile.seqClass(type);
  if (base == nullptr) return nullptr;
  const liberty::LibCell* found = nullptr;
  gatefile.library().forEachCell([&](const liberty::LibCell& c) {
    if (found != nullptr) return;
    if (c.kind != liberty::CellKind::kFlipFlop) return;
    const liberty::SeqClass* sc = gatefile.seqClass(c.name);
    if (sc == nullptr || !sc->isScan()) return;
    if ((sc->async_clear_pin.empty() != base->async_clear_pin.empty()) ||
        (sc->async_preset_pin.empty() != base->async_preset_pin.empty()) ||
        (sc->sync_pin.empty() != base->sync_pin.empty())) {
      return;
    }
    found = &c;
  });
  return found;
}

}  // namespace

ScanResult insertScan(Module& module, const liberty::Gatefile& gatefile,
                      const ScanOptions& options) {
  ScanResult result;

  // Snapshot flip-flops.
  std::vector<CellId> ffs;
  module.forEachCell([&](CellId cid) {
    std::string type(module.cellType(cid));
    const liberty::SeqClass* sc = gatefile.seqClass(type);
    if (gatefile.isFlipFlop(type) && sc != nullptr && !sc->isScan()) {
      ffs.push_back(cid);
    }
  });

  // New scan ports.
  NetId si_net = module.addNet(options.scan_in_port);
  module.addPort(options.scan_in_port, PortDir::kInput, si_net);
  NetId se_net = module.addNet(options.scan_en_port);
  module.addPort(options.scan_en_port, PortDir::kInput, se_net);

  NetId prev_q = si_net;  // chain head
  for (CellId ff : ffs) {
    std::string type(module.cellType(ff));
    std::string name(module.cellName(ff));
    const liberty::LibCell* scan_cell = scanEquivalent(gatefile, type);
    if (scan_cell == nullptr) {
      throw netlist::NetlistError("no scan equivalent for cell type " +
                                  type);
    }
    const liberty::SeqClass* base_sc = gatefile.seqClass(type);
    const liberty::SeqClass* scan_sc = gatefile.seqClass(scan_cell->name);

    // Collect original connections.
    auto pin = [&](const std::string& p) -> NetId {
      return p.empty() ? NetId{} : module.pinNet(ff, p);
    };
    NetId d = pin(base_sc->data_pin);
    NetId cp = pin(base_sc->clock_pin);
    NetId clr = pin(base_sc->async_clear_pin);
    NetId pre = pin(base_sc->async_preset_pin);
    NetId sync = pin(base_sc->sync_pin);
    NetId q = pin(base_sc->q_pin);
    NetId qn = pin(base_sc->qn_pin);

    module.removeCell(ff);

    std::vector<Module::PinInit> pins;
    auto add = [&](const std::string& p, PortDir dir, NetId net) {
      if (!p.empty() && net.valid()) pins.push_back({p, dir, net});
    };
    add(scan_sc->data_pin, PortDir::kInput, d);
    add(scan_sc->scan_in, PortDir::kInput, prev_q);
    add(scan_sc->scan_enable, PortDir::kInput, se_net);
    add(scan_sc->clock_pin, PortDir::kInput, cp);
    add(scan_sc->async_clear_pin, PortDir::kInput, clr);
    add(scan_sc->async_preset_pin, PortDir::kInput, pre);
    add(scan_sc->sync_pin, PortDir::kInput, sync);
    // Q must exist for the chain even when functionally unused.
    if (!q.valid()) q = module.addNet(name + "_scanq");
    add(scan_sc->q_pin, PortDir::kOutput, q);
    add(scan_sc->qn_pin, PortDir::kOutput, qn);
    module.addCell(name, scan_cell->name, pins);

    prev_q = q;
    result.chain.push_back(name);
  }

  module.addPort(options.scan_out_port, PortDir::kOutput, prev_q);
  result.chain_length = result.chain.size();
  return result;
}

}  // namespace desync::dft
