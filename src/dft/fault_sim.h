// Stuck-at fault simulation over the scan chain (thesis §4.3: "After the
// scan chain insertion the test vectors are extracted.  These vectors are
// used after fabrication to detect any chip errors").
//
// Random patterns are shifted through the scan chain, a capture cycle is
// applied, and the captured state is shifted back out.  A fault is detected
// when its scan-out stream differs from the fault-free machine's.  Faults
// are single stuck-at-0/1 faults on nets (net-collapsed fault model).
#pragma once

#include <string>
#include <vector>

#include "dft/scan.h"
#include "liberty/gatefile.h"
#include "netlist/netlist.h"
#include "sim/stimulus.h"
#include "sim/value.h"

namespace desync::dft {

struct Fault {
  std::string net;
  bool stuck1 = false;
  bool detected = false;
};

struct FaultSimOptions {
  int n_patterns = 16;
  std::uint64_t seed = 1;
  std::string clock_port = "clk";
  std::string reset_port = "rst_n";
  bool reset_active_low = true;
  ScanOptions scan;
  double period_ns = 10.0;
  /// Cap on simulated faults (0 = all); faults beyond the cap are sampled
  /// deterministically.
  std::size_t max_faults = 0;
  /// Campaign engine (`--fe-engine`): kBitsim simulates 63 faults plus the
  /// golden machine per pass (one fault forced per lane) and falls back to
  /// the event engine on designs outside the cycle model.  The detected
  /// flags are byte-identical between engines.
  sim::SyncEngine engine = sim::SyncEngine::kBitsim;
};

struct FaultSimResult {
  std::size_t total = 0;
  std::size_t detected = 0;
  [[nodiscard]] double coverage() const {
    return total == 0 ? 0.0 : static_cast<double>(detected) /
                                  static_cast<double>(total);
  }
  std::vector<Fault> faults;
  /// The applied scan patterns (the extracted "test vectors").
  std::vector<std::vector<bool>> patterns;
};

/// Runs scan-based stuck-at fault simulation on a scan-inserted module.
FaultSimResult runScanFaultSim(const netlist::Module& module,
                               const liberty::Gatefile& gatefile,
                               const ScanResult& scan,
                               const FaultSimOptions& options = {});

}  // namespace desync::dft
