#include "sim/power.h"

namespace desync::sim {

PowerReport estimatePower(const Simulator& sim,
                          const liberty::Gatefile& /*gatefile*/,
                          Time window_ps, const PowerOptions& options) {
  if (window_ps <= 0) throw SimError("power window must be positive");
  const netlist::Module& m = sim.module();
  const liberty::BoundModule& bound = sim.bound();

  PowerReport report;
  // Switched energy: every 0<->1 toggle charges the net load plus the
  // driver's internal capacitance.  E = 1/2 C V^2; with C in pF and V in
  // volts the energy comes out in pJ.
  const double v2 = options.vdd * options.vdd;
  m.forEachNet([&](netlist::NetId id) {
    const std::uint64_t n = sim.toggles()[id.value];
    if (n == 0) return;
    report.toggles += n;
    const double cap = sim.netLoads()[id.value] + options.internal_cap_pf;
    report.switched_energy_pj += 0.5 * cap * v2 * static_cast<double>(n);
  });
  // pJ / ns = mW.
  report.dynamic_mw = report.switched_energy_pj / psToNs(window_ps);

  // Leakage: sum of Liberty cell leakage (nW), from the simulator's
  // binding — no per-cell library lookups.
  double leak_nw = 0.0;
  m.forEachCell(
      [&](netlist::CellId id) { leak_nw += bound.leakage(id); });
  report.leakage_mw = leak_nw * 1e-6;
  return report;
}

}  // namespace desync::sim
