// Three-valued simulation logic (0 / 1 / X).
//
// Both simulation engines evaluate the same semantics from this header:
// the event-driven `sim::Simulator` on scalar `Val`s, and the compiled
// bit-parallel `sim::bitsim` engine on 64-lane dual-rail words.  Keeping
// the scalar and lane implementations side by side (and exhaustively
// cross-checked in bitsim_test) is what lets the engines guarantee
// byte-identical verdicts.
#pragma once

#include <cstdint>

namespace desync::sim {

enum class Val : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

[[nodiscard]] constexpr bool isKnown(Val v) { return v != Val::kX; }
[[nodiscard]] constexpr Val fromBool(bool b) { return b ? Val::k1 : Val::k0; }
[[nodiscard]] constexpr char toChar(Val v) {
  return v == Val::k0 ? '0' : v == Val::k1 ? '1' : 'x';
}
[[nodiscard]] constexpr Val invert(Val v) {
  return v == Val::kX ? Val::kX : fromBool(v == Val::k0);
}

// --- shared table-driven scalar ops --------------------------------------

/// X-aware truth-table evaluation: the output is known iff every completion
/// of the X inputs lands on the same table entry (the standard 3-valued
/// completion semantics).  `table` bit r is the output for input row r
/// (input i contributes bit i of r); n <= 6.
[[nodiscard]] constexpr Val evalTable3(std::uint64_t table, const Val* in,
                                       unsigned n) {
  std::uint32_t base = 0;
  std::uint32_t x_positions[6] = {};
  unsigned n_x = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (in[i] == Val::k1) {
      base |= 1u << i;
    } else if (in[i] == Val::kX) {
      x_positions[n_x++] = i;
    }
  }
  if (n_x == 0) {
    return fromBool((table >> base) & 1u);
  }
  bool saw0 = false, saw1 = false;
  for (std::uint32_t m = 0; m < (1u << n_x); ++m) {
    std::uint32_t row = base;
    for (unsigned k = 0; k < n_x; ++k) {
      if ((m >> k) & 1u) row |= 1u << x_positions[k];
    }
    if ((table >> row) & 1u) {
      saw1 = true;
    } else {
      saw0 = true;
    }
    if (saw0 && saw1) return Val::kX;
  }
  return saw1 ? Val::k1 : Val::k0;
}

/// Level test with polarity: is the (possibly active-low) control active?
[[nodiscard]] constexpr Val activeLevel(Val v, bool active_low) {
  if (v == Val::kX) return Val::kX;
  return fromBool(active_low ? v == Val::k0 : v == Val::k1);
}

/// "Equal keeps, conflict is unknown": the resolution used by the scan mux
/// with se=X and the synchronous set/reset with control=X.  Note X==X keeps
/// X (matching the scalar `(a == b) ? a : X` branches both engines share).
[[nodiscard]] constexpr Val merge3(Val a, Val b) {
  return a == b ? a : Val::kX;
}

// --- 64-lane dual-rail words ---------------------------------------------
//
// One LaneWord carries 64 independent simulation lanes of one net: bit l of
// `val` is lane l's value and bit l of `known` says whether that lane is
// 0/1 (X otherwise).  Canonical form: val & ~known == 0 — every op below
// preserves it, so lane extraction and equality are plain word compares.

constexpr unsigned kLanes = 64;

struct LaneWord {
  std::uint64_t val = 0;
  std::uint64_t known = 0;

  friend constexpr bool operator==(const LaneWord& a, const LaneWord& b) {
    return a.val == b.val && a.known == b.known;
  }
};

[[nodiscard]] constexpr LaneWord laneBroadcast(Val v) {
  switch (v) {
    case Val::k0: return LaneWord{0, ~std::uint64_t{0}};
    case Val::k1: return LaneWord{~std::uint64_t{0}, ~std::uint64_t{0}};
    default: return LaneWord{0, 0};
  }
}

[[nodiscard]] constexpr Val laneGet(const LaneWord& w, unsigned lane) {
  if (!((w.known >> lane) & 1u)) return Val::kX;
  return fromBool((w.val >> lane) & 1u);
}

[[nodiscard]] constexpr LaneWord laneSet(LaneWord w, unsigned lane, Val v) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  w.val &= ~bit;
  w.known &= ~bit;
  if (v != Val::kX) {
    w.known |= bit;
    if (v == Val::k1) w.val |= bit;
  }
  return w;
}

[[nodiscard]] constexpr LaneWord laneInvert(const LaneWord& a) {
  return LaneWord{~a.val & a.known, a.known};
}

/// Per-lane merge3: lanes where both sides are known and equal keep the
/// value, all other lanes become X (X==X is X, which merge3 also keeps).
[[nodiscard]] constexpr LaneWord laneMerge(const LaneWord& a,
                                           const LaneWord& b) {
  const std::uint64_t same = a.known & b.known & ~(a.val ^ b.val);
  return LaneWord{a.val & same, same};
}

/// Per-lane activeLevel: known lanes map to "control is active?", unknown
/// lanes stay X.
[[nodiscard]] constexpr LaneWord laneActiveLevel(const LaneWord& a,
                                                 bool active_low) {
  return LaneWord{(active_low ? ~a.val : a.val) & a.known, a.known};
}

/// Per-lane evalTable3 by the row method: for every table row r, compute
/// the mask of lanes whose inputs *could* take row r (an X input can take
/// either value), and accumulate it into a can-be-1 or can-be-0 word.  A
/// lane is known iff only one of the two is reachable.  Identical to 64
/// scalar evalTable3 calls (bitsim_test proves it exhaustively).
[[nodiscard]] constexpr LaneWord laneEvalTable(std::uint64_t table,
                                               const LaneWord* in,
                                               unsigned n) {
  std::uint64_t can1 = 0, can0 = 0;
  const std::uint32_t rows = 1u << n;
  for (std::uint32_t r = 0; r < rows; ++r) {
    std::uint64_t m = ~std::uint64_t{0};
    for (unsigned i = 0; i < n; ++i) {
      // Lane can drive input i to the row's bit: value matches, or X.
      m &= ((r >> i) & 1u) ? (in[i].val | ~in[i].known) : ~in[i].val;
    }
    if ((table >> r) & 1u) {
      can1 |= m;
    } else {
      can0 |= m;
    }
  }
  // Every lane reaches at least one row, so can0 | can1 == ~0 and the
  // known mask is exactly the lanes reaching rows of a single polarity.
  return LaneWord{can1 & ~can0, can0 ^ can1};
}

/// Simulation time in picoseconds.
using Time = std::int64_t;

constexpr double kPsPerNs = 1000.0;
[[nodiscard]] constexpr Time nsToPs(double ns) {
  return static_cast<Time>(ns * kPsPerNs + 0.5);
}
[[nodiscard]] constexpr double psToNs(Time ps) {
  return static_cast<double>(ps) / kPsPerNs;
}

}  // namespace desync::sim
