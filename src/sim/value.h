// Three-valued simulation logic (0 / 1 / X).
#pragma once

#include <cstdint>

namespace desync::sim {

enum class Val : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

[[nodiscard]] constexpr bool isKnown(Val v) { return v != Val::kX; }
[[nodiscard]] constexpr Val fromBool(bool b) { return b ? Val::k1 : Val::k0; }
[[nodiscard]] constexpr char toChar(Val v) {
  return v == Val::k0 ? '0' : v == Val::k1 ? '1' : 'x';
}
[[nodiscard]] constexpr Val invert(Val v) {
  return v == Val::kX ? Val::kX : fromBool(v == Val::k0);
}

/// Simulation time in picoseconds.
using Time = std::int64_t;

constexpr double kPsPerNs = 1000.0;
[[nodiscard]] constexpr Time nsToPs(double ns) {
  return static_cast<Time>(ns * kPsPerNs + 0.5);
}
[[nodiscard]] constexpr double psToNs(Time ps) {
  return static_cast<double>(ps) / kPsPerNs;
}

}  // namespace desync::sim
