// Shared synchronous-stimulus derivation and golden-run helpers.
//
// Flow-equivalence checking needs the same clocked protocol in four places
// (the flow's --fe-check batches, the fuzz oracle, determinism_test and the
// benches): hold the clock low, assert reset, release it, then run N full
// clock cycles.  This header is the single definition of that protocol and
// of the per-batch derivation (batch index -> cycle count -> desync-side
// free-run window), so every caller derives byte-identical stimulus.
//
// The golden (synchronous, delay-free) side can be produced by either
// engine: `kEvent` runs one event-driven Simulator per batch, `kBitsim`
// packs 64 batches into one bit-parallel pass (sim/bitsim).  Both produce
// byte-identical capture sequences; bitsim falls back to the event engine
// silently when the plan compiler rejects the design, so verdicts never
// depend on the engine selection.
#pragma once

#include <string>
#include <vector>

#include "liberty/bound.h"
#include "sim/simulator.h"

namespace desync::sim {

namespace bitsim {
class BitSim;
}

/// Synchronous-side engine selection (`--fe-engine`).
enum class SyncEngine {
  kEvent,   ///< event-driven reference (sim::Simulator)
  kBitsim,  ///< compiled 64-lane cycle engine (sim::bitsim), the default
};

/// Parses "event" / "bitsim"; throws std::invalid_argument otherwise.
[[nodiscard]] SyncEngine parseSyncEngine(const std::string& name);
[[nodiscard]] const char* syncEngineName(SyncEngine engine);

/// One synchronous run: clk low, reset asserted for `reset_ns`, released,
/// one half-period of settling, then `cycles` full clock cycles of
/// 2 * half_period_ns each.
struct SyncStimulus {
  std::string clock_port = "clk";
  /// Reset input; empty = the design has no reset protocol.
  std::string reset_port = "rst_n";
  bool reset_active_low = true;
  double reset_ns = 10.0;
  double half_period_ns = 1.0;
  int cycles = 16;
};

/// FE batch derivation (shared by core/desync.cpp's --fe-check, the fuzz
/// oracle and determinism_test): batch b runs the base protocol with two
/// extra cycles per index, and the desynchronized counterpart free-runs
/// long enough to produce at least as many captures.
struct FeBatchPlan {
  int cycles = 0;
  double window_ns = 0.0;  ///< desync free-run span after reset release
};
[[nodiscard]] FeBatchPlan feBatch(const SyncStimulus& base, std::size_t batch);

/// Drives the event-driven simulator through the protocol.
void runSyncStimulus(Simulator& s, const SyncStimulus& st);

/// Same protocol on the bit-parallel engine; lane l runs
/// `lane_cycles[l]` cycles (lanes beyond lane_cycles.size() record
/// nothing).  With an empty vector every lane runs `st.cycles`.
void runSyncStimulus(bitsim::BitSim& s, const SyncStimulus& st,
                     const std::vector<int>& lane_cycles = {});

/// Golden synchronous capture logs for `n_batches` FE batches (batch b =
/// feBatch(base, b)), produced by the selected engine.  kEvent runs the
/// batches concurrently on the parallel layer; kBitsim packs 64 batches
/// per pass.  Results are byte-identical between engines and at any
/// --jobs.  BitSimError falls back to kEvent silently.
[[nodiscard]] std::vector<std::vector<CaptureLog>> goldenSyncBatches(
    const liberty::BoundModule& bound, const SyncStimulus& base,
    std::size_t n_batches, SyncEngine engine);

/// Single golden synchronous run (the fuzz oracle's FE check): the batch-0
/// protocol with exactly `base.cycles` cycles.
[[nodiscard]] std::vector<CaptureLog> goldenSyncRun(
    const liberty::BoundModule& bound, const SyncStimulus& base,
    SyncEngine engine);

}  // namespace desync::sim
