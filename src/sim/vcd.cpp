#include "sim/vcd.h"

#include <fstream>

namespace desync::sim {

struct VcdWriter::Impl {
  std::ofstream out;
  Time last_time = -1;

  void emit(Time t, const std::string& code, Val v) {
    if (t != last_time) {
      out << "#" << t << "\n";
      last_time = t;
    }
    out << toChar(v) << code << "\n";
  }
};

namespace {

/// VCD identifier codes: printable ASCII 33..126, multi-char as needed.
std::string vcdCode(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return code;
}

}  // namespace

VcdWriter::VcdWriter(Simulator& sim, const std::string& path,
                     const std::vector<std::string>& nets)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path);
  if (!impl_->out) throw SimError("cannot open VCD file: " + path);

  std::vector<std::string> watch = nets;
  if (watch.empty()) {
    for (const netlist::Port& p : sim.module().ports()) {
      watch.push_back(
          std::string(sim.module().design().names().str(p.name)));
    }
  }

  auto& out = impl_->out;
  out << "$timescale 1ps $end\n$scope module "
      << std::string(sim.module().name()) << " $end\n";
  for (std::size_t i = 0; i < watch.size(); ++i) {
    std::string code = vcdCode(i);
    out << "$var wire 1 " << code << " " << watch[i] << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n#0\n";
  impl_->last_time = 0;
  for (std::size_t i = 0; i < watch.size(); ++i) {
    std::string code = vcdCode(i);
    out << toChar(sim.value(watch[i])) << code << "\n";
    Impl* impl = impl_.get();
    sim.watchNet(watch[i],
                 [impl, code](Time t, Val v) { impl->emit(t, code, v); });
  }
}

VcdWriter::~VcdWriter() = default;

}  // namespace desync::sim
