// Event-driven gate-level simulator (thesis §4.8).
//
// Simulates a flat gate-level netlist with three-valued logic and inertial
// per-instance rise/fall delays derived from the Liberty linear delay model
// (intrinsic + resistance * load).  Sequential cells (flip-flops, latches,
// integrated clock gates, scan cells, async set/clear) are interpreted from
// their gatefile classification, so both the synchronous circuit and its
// desynchronized counterpart — including the self-timed controller network,
// C-elements and delay elements, which are plain combinational feedback
// structures — run in the same engine.
//
// The simulator records, per sequential element, the sequence of values it
// stores (flip-flop: at every active clock edge; latch: at every closing
// enable edge).  Flow-equivalence (thesis §2.1) is checked by comparing
// these sequences between the two circuit versions.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "liberty/bound.h"
#include "liberty/gatefile.h"
#include "netlist/netlist.h"
#include "sim/value.h"

namespace desync::sim {

class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SimOptions {
  /// Global delay multiplier (PVT corner; see variability::Corner).
  double delay_scale = 1.0;
  /// Optional per-instance multiplier (intra-die variation), keyed by cell
  /// name.  Return 1.0 for nominal.
  std::function<double(std::string_view cell_name)> cell_delay_scale;
  /// Floor for any gate delay, ns.
  double min_delay_ns = 0.001;
  /// Record stored-value sequences of sequential elements.
  bool record_captures = true;
  /// Count 0<->1 toggles per net (for power estimation).
  bool count_toggles = true;
};

/// Stored-value log of one sequential element.
struct CaptureLog {
  std::string element;            ///< cell name
  std::vector<Val> values;        ///< one entry per store
  std::vector<Time> times;        ///< matching timestamps
};

class Simulator {
 public:
  /// Builds the simulation model.  `module` must be flat; every cell type
  /// must exist in the gatefile's library.  Binds the module internally;
  /// prefer the BoundModule overload when several passes share one binding.
  Simulator(const netlist::Module& module, const liberty::Gatefile& gatefile,
            SimOptions options = {});

  /// Builds the simulation model from an existing binding (no per-cell
  /// string lookups).  `bound` must outlive the simulator and stay in sync
  /// with the module (no netlist mutation in between).
  explicit Simulator(const liberty::BoundModule& bound,
                     SimOptions options = {});

  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- stimulus ---------------------------------------------------------

  /// Drives an input port (or any undriven net) to `v` now.
  void setInput(std::string_view port, Val v);
  /// Schedules an input change at an absolute future time.
  void setInputAt(std::string_view port, Val v, Time at);

  /// Forces a net to a constant value, overriding its driver (stuck-at
  /// fault injection).  The force stays until releaseNet().
  void forceNet(std::string_view net, Val v);
  void releaseNet(std::string_view net);

  // --- execution --------------------------------------------------------

  /// Processes events up to and including `until`; time advances to it.
  void run(Time until);
  /// Runs until no events remain or `max_time` is reached.  Returns the
  /// time of the last processed event.
  Time runUntilStable(Time max_time);
  /// True when no pending events remain.
  [[nodiscard]] bool stable() const;

  [[nodiscard]] Time now() const { return now_; }

  // --- observation ------------------------------------------------------

  [[nodiscard]] Val value(std::string_view net_or_port) const;
  [[nodiscard]] Val netValue(netlist::NetId id) const;

  /// Capture logs of all sequential elements (by model order).
  [[nodiscard]] const std::vector<CaptureLog>& captures() const {
    return captures_;
  }
  /// Capture log of one element by cell name; nullptr if absent.
  [[nodiscard]] const CaptureLog* captureOf(std::string_view cell) const;

  /// 0<->1 toggle count per net id value.
  [[nodiscard]] const std::vector<std::uint64_t>& toggles() const {
    return toggles_;
  }
  [[nodiscard]] std::uint64_t totalToggles() const;

  /// Total events processed (progress / performance metric).
  [[nodiscard]] std::uint64_t eventsProcessed() const { return events_; }

  /// Looks up the net driving/driven by a port.
  [[nodiscard]] netlist::NetId portNet(std::string_view port) const;

  /// Registers a callback fired on every committed change of `net`.
  using WatchFn = std::function<void(Time, Val)>;
  void watchNet(std::string_view net_or_port, WatchFn fn);

  /// Netlist the simulator was built from.
  [[nodiscard]] const netlist::Module& module() const { return *module_; }

  /// Library binding the model was built from (owned or external).
  [[nodiscard]] const liberty::BoundModule& bound() const { return *bound_; }

  /// Capacitive load seen by the driver of each net (pF), as used for the
  /// delay model; exposed for the power model.
  [[nodiscard]] const std::vector<double>& netLoads() const {
    return net_load_;
  }

 private:
  struct Impl;
  void build();
  void applyEvent(std::uint32_t net, Val v);
  void evalComb(std::uint32_t gate_idx);
  void evalSeq(std::uint32_t seq_idx, std::uint32_t changed_net, Val old_val);
  void scheduleNet(std::uint32_t net, Val v, Time delay);

  const netlist::Module* module_;
  std::unique_ptr<liberty::BoundModule> owned_bound_;  // string-ctor only
  const liberty::BoundModule* bound_;
  SimOptions options_;
  Time now_ = 0;
  std::uint64_t events_ = 0;

  // Model arrays (filled by the constructor; see simulator.cpp).
  struct CombGate;
  struct SeqElem;
  struct Fanout;
  std::vector<CombGate> combs_;
  std::vector<SeqElem> seqs_;
  std::vector<Val> net_val_;
  std::vector<std::vector<Fanout>> fanout_;
  std::vector<double> net_load_;
  std::vector<bool> forced_;
  std::vector<std::uint64_t> toggles_;
  std::vector<CaptureLog> captures_;
  std::unordered_map<std::uint32_t, std::vector<WatchFn>> watches_;

  // Event queue with lazy cancellation (one pending change per net).
  struct Event;
  std::vector<Event> heap_;
  std::vector<std::uint32_t> pending_serial_;
  std::vector<Val> pending_val_;
  std::vector<Time> pending_time_;

  // Externally scheduled input changes live in their own queue: they are
  // testbench stimuli, not inertial gate outputs, so many may be pending on
  // the same net.
  std::multimap<Time, std::pair<std::uint32_t, Val>> input_queue_;

  /// Pops stale heap entries; returns the earliest pending event time or
  /// a negative value when none.
  [[nodiscard]] Time nextGateEventTime();
  /// Processes exactly one event (the earliest of gate/input queues).
  void processOne();

  std::unordered_map<std::string, std::uint32_t> net_index_;
};

}  // namespace desync::sim
