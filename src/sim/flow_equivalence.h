// Flow-equivalence checking (thesis §2.1).
//
// Desynchronization preserves flow-equivalence: every sequential element of
// the desynchronized circuit stores exactly the same value sequence as its
// synchronous counterpart.  This checker compares the capture logs recorded
// by two simulations: the synchronous flip-flop's stored sequence against
// the corresponding slave latch's stored sequence in the desynchronized
// version.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace desync::sim {

struct FlowEqReport {
  bool equivalent = true;
  std::size_t elements_compared = 0;
  std::size_t values_compared = 0;
  std::size_t mismatches = 0;
  std::size_t skipped = 0;          ///< sync elements without a counterpart
  std::vector<std::string> details;  ///< first few mismatch descriptions
};

struct FlowEqOptions {
  /// Maps a synchronous flip-flop cell name to the desynchronized slave
  /// latch cell name.  Default: append "_Ls" (drdesync's naming).
  std::function<std::string(const std::string&)> map_name;
  /// Minimum number of common captures an element must have for the
  /// comparison to count (shorter logs are reported as skipped).
  std::size_t min_common = 2;
  /// Ignore leading X captures (before reset propagated).
  bool skip_leading_x = true;
  /// The desynchronized side may record extra reset-epoch captures: latches
  /// with asynchronous controls are forced transparent during reset
  /// (Fig 3.1c) and log the reset value when the forcing releases.  Up to
  /// this many leading desync captures may be skipped to align the
  /// sequences; the remainder must then match exactly.
  std::size_t max_initial_skip = 2;
  std::size_t max_details = 8;
};

/// Compares the stored-value sequences of every sequential element of
/// `sync_sim` against the mapped element of `desync_sim`.
FlowEqReport checkFlowEquivalence(const Simulator& sync_sim,
                                  const Simulator& desync_sim,
                                  const FlowEqOptions& options = {});

/// Engine-independent variant: the synchronous side is a list of capture
/// logs, whichever engine produced them (the event-driven Simulator or the
/// bit-parallel sim/bitsim engine — see sim/stimulus.h's golden helpers).
/// The (Simulator, Simulator) overload delegates here.
FlowEqReport checkFlowEquivalence(const std::vector<CaptureLog>& sync_logs,
                                  const Simulator& desync_sim,
                                  const FlowEqOptions& options = {});

// --- batched checking over partitioned input-vector sets -----------------
//
// Large flow-equivalence campaigns split the stimulus into independent
// vector batches (different input vectors, windows or delay selections per
// batch).  Each batch gets its own per-worker simulator instances, so the
// batches run concurrently on the parallel layer (core/parallel.h) while
// the merged verdict stays byte-identical to a serial run: per-batch
// reports are collected index-aligned and reduced in batch order.

/// Builds *and runs* the simulation for one batch: the factory derives the
/// batch's stimulus deterministically from the batch index alone (vectors,
/// window length, calibration selection, ...) and returns the finished
/// simulator, whose capture logs are then compared.
using SimFactory =
    std::function<std::unique_ptr<Simulator>(std::size_t batch)>;

struct FlowEqBatchReport {
  bool equivalent = true;             ///< AND over all batches
  std::size_t batches_run = 0;
  std::size_t elements_compared = 0;  ///< summed over batches
  std::size_t values_compared = 0;
  std::size_t mismatches = 0;
  std::vector<FlowEqReport> per_batch;  ///< index-aligned with batches
};

/// Runs `n_batches` independent sync/desync simulation pairs and checks
/// flow equivalence per batch.  Both factories are invoked concurrently
/// from pool workers and must only read shared state (const netlist,
/// gatefile, binding).
FlowEqBatchReport checkFlowEquivalenceBatches(
    std::size_t n_batches, const SimFactory& run_sync,
    const SimFactory& run_desync, const FlowEqOptions& options = {});

/// Variant with one shared golden synchronous run: the stored-value
/// sequences of the synchronous circuit do not depend on delays, so a
/// single capture log can serve every batch (e.g. Fig 5.3's per-corner
/// sweeps).  `golden_sync` is read concurrently and must outlive the call.
FlowEqBatchReport checkFlowEquivalenceBatches(
    const Simulator& golden_sync, std::size_t n_batches,
    const SimFactory& run_desync, const FlowEqOptions& options = {});

/// Variant over precomputed per-batch golden capture logs (one entry per
/// batch; sim/stimulus.h's goldenSyncBatches produces them with either
/// engine, the bit-parallel one 64 batches per pass).  Only the
/// desynchronized/timed side still event-simulates, concurrently on the
/// parallel layer.  `sync_batches` is read concurrently and must outlive
/// the call.
FlowEqBatchReport checkFlowEquivalenceBatches(
    const std::vector<std::vector<CaptureLog>>& sync_batches,
    const SimFactory& run_desync, const FlowEqOptions& options = {});

}  // namespace desync::sim
