// Activity-based power estimation (thesis §5.2.3).
//
// The original flow dumped VCD, converted it to SAIF and fed Design Compiler
// for power reports.  Here the simulator's per-net toggle counters play the
// SAIF role: dynamic power is the switched-capacitance energy over the
// simulated window, leakage comes from the Liberty cell leakage numbers.
#pragma once

#include "liberty/gatefile.h"
#include "sim/simulator.h"

namespace desync::sim {

struct PowerReport {
  double dynamic_mw = 0.0;
  double leakage_mw = 0.0;
  [[nodiscard]] double total_mw() const { return dynamic_mw + leakage_mw; }
  double switched_energy_pj = 0.0;  ///< total switched energy in the window
  std::uint64_t toggles = 0;
};

struct PowerOptions {
  double vdd = 1.0;  ///< supply voltage (V); corners override
  /// Internal switching capacitance charged per output toggle, on top of
  /// the external net load (pF).  Calibration constant for short-circuit +
  /// internal node power.
  double internal_cap_pf = 0.0015;
};

/// Estimates power over the window [0, window_ps] from the simulator's
/// toggle counts.  Run the simulation first.
PowerReport estimatePower(const Simulator& sim,
                          const liberty::Gatefile& gatefile, Time window_ps,
                          const PowerOptions& options = {});

}  // namespace desync::sim
