#include "sim/simulator.h"

#include <algorithm>
#include <array>

namespace desync::sim {

namespace {
constexpr std::uint32_t kNoNet = std::numeric_limits<std::uint32_t>::max();
}  // namespace

// ------------------------------------------------------------ model types

struct Simulator::CombGate {
  std::uint32_t out = kNoNet;
  std::array<std::uint32_t, 6> in{};
  std::uint8_t n_in = 0;
  std::uint64_t table = 0;
  Time rise = 0, fall = 0;
};

struct Simulator::SeqElem {
  enum class Type : std::uint8_t { kFF, kLatch, kClockGate };
  Type type = Type::kFF;
  std::uint32_t capture_idx = 0;  ///< index into captures_
  std::uint32_t clock = kNoNet;
  bool clock_inv = false;
  std::uint32_t data = kNoNet;
  std::uint32_t scan_in = kNoNet, scan_en = kNoNet;
  std::uint32_t sync = kNoNet;
  bool sync_low = false, sync_set = false;
  std::uint32_t clear = kNoNet;
  bool clear_low = false;
  std::uint32_t preset = kNoNet;
  bool preset_low = false;
  std::uint32_t q = kNoNet, qn = kNoNet;
  Time cq = 0, dq = 0;
  Val state = Val::kX;
};

struct Simulator::Fanout {
  bool is_seq = false;
  std::uint32_t idx = 0;
};

struct Simulator::Event {
  Time t = 0;
  std::uint64_t serial = 0;
  std::uint32_t net = kNoNet;
  Val val = Val::kX;

  // Min-heap ordering on (time, serial): std::push_heap builds a max-heap,
  // so comparison is inverted.
  friend bool operator<(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.serial > b.serial;
  }
};

// ------------------------------------------------------------ construction

Simulator::Simulator(const netlist::Module& module,
                     const liberty::Gatefile& gatefile, SimOptions options)
    : module_(&module),
      owned_bound_(std::make_unique<liberty::BoundModule>(module, gatefile)),
      bound_(owned_bound_.get()),
      options_(std::move(options)) {
  build();
}

Simulator::Simulator(const liberty::BoundModule& bound, SimOptions options)
    : module_(&bound.module()), bound_(&bound), options_(std::move(options)) {
  build();
}

void Simulator::build() {
  const netlist::Module& module = *module_;
  const liberty::BoundModule& bound = *bound_;
  const std::uint32_t n_nets = module.netCapacity();
  net_val_.assign(n_nets, Val::kX);
  fanout_.assign(n_nets, {});
  toggles_.assign(n_nets, 0);
  pending_serial_.assign(n_nets, 0);
  pending_val_.assign(n_nets, Val::kX);
  pending_time_.assign(n_nets, -1);

  // Name lookup: nets by name, ports by name.
  module.forEachNet([&](netlist::NetId id) {
    net_index_.emplace(std::string(module.netName(id)), id.value);
  });
  for (const netlist::Port& p : module.ports()) {
    if (p.net.valid()) {
      net_index_.emplace(std::string(module.design().names().str(p.name)),
                         p.net.value);
    }
  }

  // Net loads come precomputed with the binding.
  net_load_ = bound.netLoads();

  // Build gates from the bound view: every per-cell resolution below is an
  // integer index into the binding's dense arrays.
  module.forEachCell([&](netlist::CellId cid) {
    const liberty::BoundType* bt = bound.typeOf(cid);
    if (bt == nullptr) {
      throw SimError("unknown cell type (flatten first?): " +
                     std::string(module.cellType(cid)));
    }
    const liberty::LibCell* lc = bt->cell;
    std::string cell_name(module.cellName(cid));
    double scale = options_.delay_scale;
    if (options_.cell_delay_scale) {
      scale *= options_.cell_delay_scale(cell_name);
    }
    auto toSlot = [](netlist::NetId n) {
      return n.valid() ? n.value : kNoNet;
    };
    auto arcDelay = [&](const liberty::LibPin& out, std::uint32_t out_net,
                        bool rise) {
      double worst = 0.0;
      double cap = out_net == kNoNet ? 0.0 : net_load_[out_net];
      for (const liberty::TimingArc& a : out.arcs) {
        if (a.type == liberty::ArcType::kSetup ||
            a.type == liberty::ArcType::kHold) {
          continue;
        }
        double d = rise ? a.intrinsic_rise + a.rise_resistance * cap
                        : a.intrinsic_fall + a.fall_resistance * cap;
        worst = std::max(worst, d);
      }
      worst = std::max(worst * scale, options_.min_delay_ns);
      return nsToPs(worst);
    };

    if (bt->kind == liberty::CellKind::kCombinational) {
      // One gate per function output (library cells have exactly one).
      for (const liberty::BoundOutput& o : bt->outputs) {
        CombGate g;
        g.out = toSlot(bound.pinNet(cid, o.pin));
        if (g.out == kNoNet) continue;
        g.n_in = static_cast<std::uint8_t>(o.inputs.size());
        for (std::size_t i = 0; i < o.inputs.size(); ++i) {
          g.in[i] = toSlot(bound.pinNet(cid, o.inputs[i]));
          if (g.in[i] == kNoNet) {
            throw SimError("unconnected input " + lc->pins[o.inputs[i]].name +
                           " on " + cell_name);
          }
        }
        g.table = o.table;
        const liberty::LibPin& p = lc->pins[o.pin];
        g.rise = arcDelay(p, g.out, true);
        g.fall = arcDelay(p, g.out, false);
        const std::uint32_t gi = static_cast<std::uint32_t>(combs_.size());
        combs_.push_back(g);
        for (std::uint8_t i = 0; i < g.n_in; ++i) {
          fanout_[g.in[i]].push_back(Fanout{false, gi});
        }
      }
      return;
    }

    // Sequential cell.
    const liberty::SeqClass* sc = bt->seq;
    if (sc == nullptr) {
      throw SimError("unclassified sequential cell " +
                     std::string(module.cellType(cid)));
    }
    const liberty::BoundSeqPins& bp = bt->seq_pins;
    auto roleNet = [&](std::int16_t lib_pin) {
      return toSlot(bound.rolePinNet(cid, lib_pin));
    };
    SeqElem s;
    s.type = bt->kind == liberty::CellKind::kFlipFlop ? SeqElem::Type::kFF
             : bt->kind == liberty::CellKind::kLatch  ? SeqElem::Type::kLatch
                                                      : SeqElem::Type::kClockGate;
    s.clock = roleNet(bp.clock);
    s.clock_inv = sc->clock_inverted;
    s.data = roleNet(bp.data);
    s.scan_in = roleNet(bp.scan_in);
    s.scan_en = roleNet(bp.scan_en);
    if (bp.sync >= 0) {
      s.sync = roleNet(bp.sync);
      s.sync_low = sc->sync_active_low;
      s.sync_set = sc->sync_is_set;
    }
    if (bp.clear >= 0) {
      s.clear = roleNet(bp.clear);
      s.clear_low = sc->async_clear_active_low;
    }
    if (bp.preset >= 0) {
      s.preset = roleNet(bp.preset);
      s.preset_low = sc->async_preset_active_low;
    }
    s.q = roleNet(bp.q);
    s.qn = roleNet(bp.qn);
    // Delays: clock->q from the q pin's clock arc, d->q (latch transparency)
    // from its combinational arc.
    s.cq = nsToPs(std::max(0.1 * options_.delay_scale, options_.min_delay_ns));
    s.dq = s.cq;
    if (bp.q >= 0) {
      const liberty::LibPin& qp =
          lc->pins[static_cast<std::size_t>(bp.q)];
      double cap = s.q == kNoNet ? 0.0 : net_load_[s.q];
      for (const liberty::TimingArc& a : qp.arcs) {
        double d = std::max(a.intrinsic_rise + a.rise_resistance * cap,
                            a.intrinsic_fall + a.fall_resistance * cap);
        d = std::max(d * scale, options_.min_delay_ns);
        if (a.type == liberty::ArcType::kClockToQ) s.cq = nsToPs(d);
        if (a.type == liberty::ArcType::kCombinational) s.dq = nsToPs(d);
      }
    }
    s.capture_idx = static_cast<std::uint32_t>(captures_.size());
    captures_.push_back(CaptureLog{cell_name, {}, {}});
    const std::uint32_t si = static_cast<std::uint32_t>(seqs_.size());
    seqs_.push_back(s);
    for (std::uint32_t n :
         {s.clock, s.data, s.scan_in, s.scan_en, s.sync, s.clear, s.preset}) {
      if (n != kNoNet) fanout_[n].push_back(Fanout{true, si});
    }
  });

  // Constants and initial evaluation.
  module.forEachNet([&](netlist::NetId id) {
    const netlist::Net& n = module.net(id);
    if (n.driver.kind == netlist::TermKind::kConst0) {
      net_val_[id.value] = Val::k0;
    } else if (n.driver.kind == netlist::TermKind::kConst1) {
      net_val_[id.value] = Val::k1;
    }
  });
  for (std::uint32_t gi = 0; gi < combs_.size(); ++gi) evalComb(gi);
}

Simulator::~Simulator() = default;

// ------------------------------------------------------------- evaluation

// Truth-table and control-level semantics come from the shared table-driven
// ops in sim/value.h (evalTable3 / activeLevel / merge3), which the
// bit-parallel engine evaluates 64 lanes at a time.

void Simulator::evalComb(std::uint32_t gate_idx) {
  const CombGate& g = combs_[gate_idx];
  std::array<Val, 6> in{};
  for (std::uint8_t i = 0; i < g.n_in; ++i) in[i] = net_val_[g.in[i]];
  Val target = evalTable3(g.table, in.data(), g.n_in);
  const bool rising = target == Val::k1 ||
                      (target == Val::kX && net_val_[g.out] == Val::k0);
  scheduleNet(g.out, target, rising ? g.rise : g.fall);
}

void Simulator::evalSeq(std::uint32_t seq_idx, std::uint32_t changed_net,
                        Val old_val) {
  SeqElem& s = seqs_[seq_idx];

  auto driveOutputs = [&](Time delay) {
    if (s.q != kNoNet) scheduleNet(s.q, s.state, delay);
    if (s.qn != kNoNet) scheduleNet(s.qn, invert(s.state), delay);
  };
  auto record = [&]() {
    if (!options_.record_captures) return;
    CaptureLog& log = captures_[s.capture_idx];
    log.values.push_back(s.state);
    log.times.push_back(now_);
  };

  // Asynchronous controls dominate.
  Val clr = s.clear == kNoNet ? Val::k0
                              : activeLevel(net_val_[s.clear], s.clear_low);
  Val pre = s.preset == kNoNet
                ? Val::k0
                : activeLevel(net_val_[s.preset], s.preset_low);
  if (clr == Val::k1 || pre == Val::k1) {
    Val forced = Val::kX;
    if (clr == Val::k1 && pre != Val::k1) forced = Val::k0;
    if (pre == Val::k1 && clr != Val::k1) forced = Val::k1;
    if (s.state != forced) {
      s.state = forced;
      driveOutputs(s.cq);
    }
    return;
  }
  if (clr == Val::kX || pre == Val::kX) {
    if (s.state != Val::kX) {
      s.state = Val::kX;
      driveOutputs(s.cq);
    }
    return;
  }

  // Next-state function (scan mux + synchronous set/reset + data).
  auto nextState = [&]() -> Val {
    Val d = s.data == kNoNet ? Val::kX : net_val_[s.data];
    if (s.scan_en != kNoNet) {
      Val se = net_val_[s.scan_en];
      Val si = s.scan_in == kNoNet ? Val::kX : net_val_[s.scan_in];
      if (se == Val::k1) {
        d = si;
      } else if (se == Val::kX) {
        d = merge3(si, d);
      }
    }
    if (s.sync != kNoNet) {
      Val active = activeLevel(net_val_[s.sync], s.sync_low);
      Val forced = s.sync_set ? Val::k1 : Val::k0;
      if (active == Val::k1) {
        d = forced;
      } else if (active == Val::kX) {
        d = merge3(d, forced);
      }
    }
    return d;
  };

  auto effClock = [&](Val raw) {
    return s.clock_inv ? invert(raw) : raw;
  };

  if (s.type == SeqElem::Type::kFF) {
    if (changed_net != s.clock) return;  // data changes wait for the edge
    Val before = effClock(old_val);
    Val after = effClock(net_val_[s.clock]);
    if (before == Val::k0 && after == Val::k1) {
      s.state = nextState();
      record();
      driveOutputs(s.cq);
    } else if (after == Val::kX && before != Val::kX) {
      s.state = Val::kX;
      driveOutputs(s.cq);
    }
    return;
  }

  if (s.type == SeqElem::Type::kLatch) {
    Val en = effClock(net_val_[s.clock]);
    if (changed_net == s.clock) {
      Val en_before = effClock(old_val);
      if (en == Val::k1) {
        // Opened: output follows data.
        s.state = nextState();
        driveOutputs(s.dq);
      } else if (en == Val::k0 && en_before != Val::k0) {
        // Closed: store the data present now.
        s.state = nextState();
        record();
        driveOutputs(s.dq);
      } else if (en == Val::kX) {
        s.state = Val::kX;
        driveOutputs(s.dq);
      }
      return;
    }
    // Data-side change while transparent.
    if (en == Val::k1) {
      s.state = nextState();
      driveOutputs(s.dq);
    } else if (en == Val::kX && s.state != Val::kX) {
      s.state = Val::kX;
      driveOutputs(s.dq);
    }
    return;
  }

  // Integrated clock gate: enable latch transparent while clock inactive;
  // output = latched_enable AND clock.
  Val cp = net_val_[s.clock];  // raw clock (enable = CP', so inactive = CP=1)
  if (changed_net == s.clock) {
    if (cp == Val::k1) {
      // Latch froze at the rising edge; gated clock = stored enable.
      record();
      if (s.q != kNoNet) scheduleNet(s.q, s.state, s.cq);
    } else if (cp == Val::k0) {
      // Enable latch turns transparent again: resample E.
      s.state = s.data == kNoNet ? Val::kX : net_val_[s.data];
      if (s.q != kNoNet) scheduleNet(s.q, Val::k0, s.cq);
    } else {
      s.state = Val::kX;
      if (s.q != kNoNet) scheduleNet(s.q, Val::kX, s.cq);
    }
    return;
  }
  // Enable change: transparent while clock low.
  if (cp == Val::k0) {
    s.state = s.data == kNoNet ? Val::kX : net_val_[s.data];
  } else if (cp == Val::kX) {
    s.state = Val::kX;
  }
}

// ---------------------------------------------------------------- events

void Simulator::scheduleNet(std::uint32_t net, Val v, Time delay) {
  if (net == kNoNet) return;
  if (!forced_.empty() && forced_[net]) return;  // stuck-at override
  static_assert(sizeof(Event) == 24 || sizeof(Event) == 32, "layout sanity");
  const bool has_pending = pending_time_[net] >= 0;
  if (!has_pending && net_val_[net] == v) return;  // no change
  if (has_pending && pending_val_[net] == v) return;  // already on the way
  if (has_pending && net_val_[net] == v) {
    // Inertial cancellation: the pulse is shorter than the gate delay.
    pending_serial_[net]++;  // invalidates the queued event
    pending_time_[net] = -1;
    return;
  }
  const Time at = now_ + std::max<Time>(delay, 1);
  pending_serial_[net]++;
  pending_val_[net] = v;
  pending_time_[net] = at;
  heap_.push_back(Event{at, (static_cast<std::uint64_t>(pending_serial_[net])
                             << 32) |
                                net,
                        net, v});
  std::push_heap(heap_.begin(), heap_.end());
}

void Simulator::applyEvent(std::uint32_t net, Val v) {
  Val old = net_val_[net];
  if (old == v) return;
  net_val_[net] = v;
  if (options_.count_toggles && isKnown(old) && isKnown(v)) {
    ++toggles_[net];
  }
  ++events_;
  if (auto it = watches_.find(net); it != watches_.end()) {
    for (const WatchFn& fn : it->second) fn(now_, v);
  }
  for (const Fanout& f : fanout_[net]) {
    if (f.is_seq) {
      evalSeq(f.idx, net, old);
    } else {
      evalComb(f.idx);
    }
  }
}

Time Simulator::nextGateEventTime() {
  while (!heap_.empty()) {
    const Event& e = heap_.front();
    const std::uint64_t expect =
        (static_cast<std::uint64_t>(pending_serial_[e.net]) << 32) | e.net;
    if (e.serial == expect && pending_time_[e.net] == e.t) return e.t;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  return -1;
}

void Simulator::processOne() {
  const Time tg = nextGateEventTime();
  const Time ti = input_queue_.empty() ? -1 : input_queue_.begin()->first;
  if (ti >= 0 && (tg < 0 || ti <= tg)) {
    auto it = input_queue_.begin();
    now_ = it->first;
    auto [net, val] = it->second;
    input_queue_.erase(it);
    // A stuck-at force pins the net against the testbench too, exactly as
    // scheduleNet pins it against gate drivers (fault campaigns force input
    // ports such as scan_in).
    if (!forced_.empty() && forced_[net]) return;
    // An input change overrides any pending gate event on the net.
    pending_serial_[net]++;
    pending_time_[net] = -1;
    applyEvent(net, val);
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end());
  Event e = heap_.back();
  heap_.pop_back();
  now_ = e.t;
  pending_time_[e.net] = -1;
  applyEvent(e.net, e.val);
}

void Simulator::run(Time until) {
  for (;;) {
    const Time tg = nextGateEventTime();
    const Time ti = input_queue_.empty() ? -1 : input_queue_.begin()->first;
    Time next = -1;
    if (tg >= 0 && ti >= 0) {
      next = std::min(tg, ti);
    } else {
      next = std::max(tg, ti);
    }
    if (next < 0 || next > until) break;
    processOne();
  }
  now_ = std::max(now_, until);
}

Time Simulator::runUntilStable(Time max_time) {
  Time last = now_;
  for (;;) {
    const Time tg = nextGateEventTime();
    const Time ti = input_queue_.empty() ? -1 : input_queue_.begin()->first;
    Time next = -1;
    if (tg >= 0 && ti >= 0) {
      next = std::min(tg, ti);
    } else {
      next = std::max(tg, ti);
    }
    if (next < 0) break;
    if (next > max_time) {
      now_ = max_time;
      return last;
    }
    processOne();
    last = now_;
  }
  return last;
}

bool Simulator::stable() const {
  if (!input_queue_.empty()) return false;
  for (const Event& e : heap_) {
    const std::uint64_t expect =
        (static_cast<std::uint64_t>(pending_serial_[e.net]) << 32) | e.net;
    if (e.serial == expect && pending_time_[e.net] == e.t) return false;
  }
  return true;
}

// ----------------------------------------------------------------- access

void Simulator::setInput(std::string_view port, Val v) {
  setInputAt(port, v, now_);
}

void Simulator::setInputAt(std::string_view port, Val v, Time at) {
  auto it = net_index_.find(std::string(port));
  if (it == net_index_.end()) {
    throw SimError("unknown input: " + std::string(port));
  }
  if (at < now_) throw SimError("cannot schedule input in the past");
  input_queue_.emplace(std::max(at, now_ + 1), std::make_pair(it->second, v));
}

Val Simulator::value(std::string_view net_or_port) const {
  auto it = net_index_.find(std::string(net_or_port));
  if (it == net_index_.end()) {
    throw SimError("unknown net: " + std::string(net_or_port));
  }
  return net_val_[it->second];
}

Val Simulator::netValue(netlist::NetId id) const {
  return net_val_.at(id.value);
}

const CaptureLog* Simulator::captureOf(std::string_view cell) const {
  for (const CaptureLog& log : captures_) {
    if (log.element == cell) return &log;
  }
  return nullptr;
}

std::uint64_t Simulator::totalToggles() const {
  std::uint64_t sum = 0;
  for (std::uint64_t t : toggles_) sum += t;
  return sum;
}

netlist::NetId Simulator::portNet(std::string_view port) const {
  auto it = net_index_.find(std::string(port));
  return it == net_index_.end() ? netlist::NetId{}
                                : netlist::NetId{it->second};
}

void Simulator::forceNet(std::string_view net, Val v) {
  auto it = net_index_.find(std::string(net));
  if (it == net_index_.end()) {
    throw SimError("unknown net: " + std::string(net));
  }
  if (forced_.empty()) forced_.assign(net_val_.size(), false);
  const std::uint32_t n = it->second;
  // Cancel any in-flight event, pin the value, propagate the change.
  pending_serial_[n]++;
  pending_time_[n] = -1;
  applyEvent(n, v);
  forced_[n] = true;
}

void Simulator::releaseNet(std::string_view net) {
  auto it = net_index_.find(std::string(net));
  if (it == net_index_.end()) {
    throw SimError("unknown net: " + std::string(net));
  }
  if (!forced_.empty()) forced_[it->second] = false;
  // Re-evaluate the driver so the net returns to its functional value.
  const netlist::Net& n = module_->net(netlist::NetId{it->second});
  if (n.driver.isCellPin()) {
    for (std::uint32_t gi = 0; gi < combs_.size(); ++gi) {
      if (combs_[gi].out == it->second) {
        evalComb(gi);
        break;
      }
    }
  }
}

void Simulator::watchNet(std::string_view net_or_port, WatchFn fn) {
  auto it = net_index_.find(std::string(net_or_port));
  if (it == net_index_.end()) {
    throw SimError("unknown net: " + std::string(net_or_port));
  }
  watches_[it->second].push_back(std::move(fn));
}

}  // namespace desync::sim
