// VCD (Value Change Dump) waveform writer.
//
// The original flow wrote VCD during simulation and converted it to SAIF
// activity for power analysis (thesis §5.2.3); here the VCD serves waveform
// inspection while the power model taps the simulator's toggle counters
// directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace desync::sim {

/// Streams value changes of selected nets to a VCD file.  Attach before
/// running; the file is finalized on destruction.
class VcdWriter {
 public:
  /// Watches `nets` (net or port names); empty = all named ports.
  VcdWriter(Simulator& sim, const std::string& path,
            const std::vector<std::string>& nets);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace desync::sim
