#include "sim/stimulus.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"
#include "sim/bitsim/bitsim.h"
#include "trace/trace.h"

namespace desync::sim {

SyncEngine parseSyncEngine(const std::string& name) {
  if (name == "event") return SyncEngine::kEvent;
  if (name == "bitsim") return SyncEngine::kBitsim;
  throw std::invalid_argument("unknown sync engine: " + name +
                              " (expected event or bitsim)");
}

const char* syncEngineName(SyncEngine engine) {
  return engine == SyncEngine::kEvent ? "event" : "bitsim";
}

FeBatchPlan feBatch(const SyncStimulus& base, std::size_t batch) {
  FeBatchPlan plan;
  plan.cycles = base.cycles + 2 * static_cast<int>(batch);
  // The desynchronized side free-runs; six extra periods absorb the
  // controller start-up so it produces at least as many captures.
  plan.window_ns = 2.0 * base.half_period_ns * (plan.cycles + 6);
  return plan;
}

void runSyncStimulus(Simulator& s, const SyncStimulus& st) {
  const Val active = st.reset_active_low ? Val::k0 : Val::k1;
  const Val inactive = st.reset_active_low ? Val::k1 : Val::k0;
  s.setInput(st.clock_port, Val::k0);
  if (!st.reset_port.empty()) s.setInput(st.reset_port, active);
  s.run(s.now() + nsToPs(st.reset_ns));
  if (!st.reset_port.empty()) s.setInput(st.reset_port, inactive);
  s.run(s.now() + nsToPs(st.half_period_ns));
  for (int i = 0; i < st.cycles; ++i) {
    s.setInput(st.clock_port, Val::k1);
    s.run(s.now() + nsToPs(st.half_period_ns));
    s.setInput(st.clock_port, Val::k0);
    s.run(s.now() + nsToPs(st.half_period_ns));
  }
}

void runSyncStimulus(bitsim::BitSim& s, const SyncStimulus& st,
                     const std::vector<int>& lane_cycles) {
  const Val active = st.reset_active_low ? Val::k0 : Val::k1;
  const Val inactive = st.reset_active_low ? Val::k1 : Val::k0;
  // The cycle model holds the clock low at every settle point, so the
  // reset phase is two settles: asserted, then released.  Capture-wise
  // this matches the event protocol exactly — no FF records before the
  // first rising edge, and asynchronous controls are applied continuously
  // by settle() just as the event engine applies them over the reset span.
  if (!st.reset_port.empty()) {
    s.set(st.reset_port, active);
    s.settle();
    s.set(st.reset_port, inactive);
  }
  s.settle();
  int max_cycles = st.cycles;
  if (!lane_cycles.empty()) {
    max_cycles = 0;
    for (int c : lane_cycles) max_cycles = std::max(max_cycles, c);
  }
  for (int c = 0; c < max_cycles; ++c) {
    std::uint64_t mask = ~std::uint64_t{0};
    if (!lane_cycles.empty()) {
      mask = 0;
      for (std::size_t l = 0; l < lane_cycles.size() && l < kLanes; ++l) {
        if (c < lane_cycles[l]) mask |= std::uint64_t{1} << l;
      }
    }
    s.cycle(mask);
  }
}

namespace {

std::vector<std::vector<CaptureLog>> goldenSyncBatchesEvent(
    const liberty::BoundModule& bound, const SyncStimulus& base,
    std::size_t n_batches) {
  return core::parallelMap(n_batches, [&](std::size_t b) {
    trace::Span span("fe_golden", "sim");
    Simulator sync_sim(bound);
    SyncStimulus st = base;
    st.cycles = feBatch(base, b).cycles;
    runSyncStimulus(sync_sim, st);
    return sync_sim.captures();
  });
}

}  // namespace

std::vector<std::vector<CaptureLog>> goldenSyncBatches(
    const liberty::BoundModule& bound, const SyncStimulus& base,
    std::size_t n_batches, SyncEngine engine) {
  if (engine == SyncEngine::kBitsim) {
    try {
      bitsim::PlanOptions po;
      po.clock_port = base.clock_port;
      const bitsim::BitPlan plan = bitsim::compilePlan(bound, po);
      std::vector<std::vector<CaptureLog>> out(n_batches);
      for (std::size_t g0 = 0; g0 < n_batches; g0 += kLanes) {
        trace::Span span("bitsim_run", "sim");
        const std::size_t cnt = std::min<std::size_t>(kLanes, n_batches - g0);
        bitsim::BitSim s(plan);
        std::vector<int> lane_cycles(cnt);
        for (std::size_t j = 0; j < cnt; ++j) {
          lane_cycles[j] = feBatch(base, g0 + j).cycles;
        }
        runSyncStimulus(s, base, lane_cycles);
        for (std::size_t j = 0; j < cnt; ++j) {
          out[g0 + j] = s.captures(static_cast<unsigned>(j));
        }
      }
      return out;
    } catch (const bitsim::BitSimError&) {
      // Design outside the cycle model: the event engine is the answer.
    }
  }
  return goldenSyncBatchesEvent(bound, base, n_batches);
}

std::vector<CaptureLog> goldenSyncRun(const liberty::BoundModule& bound,
                                      const SyncStimulus& base,
                                      SyncEngine engine) {
  if (engine == SyncEngine::kBitsim) {
    try {
      bitsim::PlanOptions po;
      po.clock_port = base.clock_port;
      const bitsim::BitPlan plan = bitsim::compilePlan(bound, po);
      trace::Span span("bitsim_run", "sim");
      bitsim::BitSim s(plan);
      runSyncStimulus(s, base, {});
      return s.captures(0);
    } catch (const bitsim::BitSimError&) {
    }
  }
  Simulator sync_sim(bound);
  runSyncStimulus(sync_sim, base);
  return sync_sim.captures();
}

}  // namespace desync::sim
