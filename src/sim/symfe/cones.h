// Fan-in cone extraction: BoundModule nets -> encoder literals.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "liberty/bound.h"
#include "netlist/netlist.h"
#include "sim/symfe/encoder.h"

namespace desync::sim::symfe {

/// A cone could not be expressed combinationally (cycle, clock gate in a
/// data path, latch on the synchronous side, ...).  The prover turns this
/// into a kSkipped verdict for the register, never a silent pass.
class ConeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// True for the raw region enable nets G<g>_gm / G<g>_gs the controllers
/// drive.  On the desync side a cone walk cuts there: at the settled
/// pre-capture instant the handshake has granted the phase, so the enable
/// is true — and everything behind it (controllers, delay elements) is the
/// protocol's concern, checked separately via token flow.
bool isRawEnableNet(std::string_view name);

/// Memoized recursive walk of combinational fan-in cones.
///
/// Shared leaf keys (through one Encoder) unify the two sides:
///   "in:<net>"  primary input (port-driven net)
///   "reg:<ff>"  old register state (sync FF Q / desync *_Ls latch Q)
///   "net:<net>" undriven net (free variable)
/// Desync-side rules: raw enable nets cut to constant true, *_Ls slave
/// latches become state leaves, every other substitution latch (_Lm,
/// _cenLm, _cenLs) is transparent at the pre-capture instant.
class ConeExtractor {
 public:
  ConeExtractor(const liberty::BoundModule& bound, Encoder& enc,
                bool desync_side)
      : bound_(bound), module_(bound.module()), enc_(enc),
        desync_side_(desync_side) {}

  sat::Lit literalFor(netlist::NetId net) { return walk(net, 0); }

 private:
  sat::Lit walk(netlist::NetId net, int depth);
  sat::Lit compute(netlist::NetId net, int depth);

  const liberty::BoundModule& bound_;
  const netlist::Module& module_;
  Encoder& enc_;
  bool desync_side_;
  std::unordered_map<std::uint32_t, sat::Lit> memo_;
  std::unordered_set<std::uint32_t> expanding_;
};

}  // namespace desync::sim::symfe
