// Symbolic flow-equivalence prover.
//
// Flow equivalence between a synchronous module and its desynchronized
// counterpart reduces to per-register projection equivalence (Paykin et
// al., arXiv 2004.10655): for every replaced flip-flop, the value it holds
// after a clock cycle — as a function of the primary inputs and the old
// register state — must equal the value its slave latch holds after one
// master/slave handshake.  Both sides are combinational functions once the
// handshake is cut at the settled pre-capture instant, so each register
// yields a miter that a small CDCL solver (src/sat) proves UNSAT — an
// exhaustive proof where the vector route (sim/flow_equivalence) only
// samples.  What the cut abstracts away — that every enable eventually
// fires and data latches are not overwritten early — is covered separately
// by a token-flow admissibility check of the chosen controller protocol
// over the region dependency graph.
//
// The prover is timing-blind by construction: it verifies the logic under
// the matched-delay timing contract and cannot see margin faults (a
// short-margin delay element fails the *vector* route only).  `--fe-mode
// both` runs the two routes as complementary checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "async/controllers.h"
#include "liberty/bound.h"
#include "sim/value.h"

namespace desync::sim::symfe {

/// A satisfying miter assignment decoded into named leaf values.
struct Counterexample {
  std::vector<std::pair<std::string, bool>> inputs;  ///< primary input nets
  std::vector<std::pair<std::string, bool>> states;  ///< old register values
  std::vector<std::pair<std::string, bool>> frees;   ///< undriven nets
  bool sync_value = false;    ///< register value after the sync cycle
  bool desync_value = false;  ///< slave latch value after the handshake
  bool sync_captures = false;     ///< live clock edge (no async, ICG on)
  bool async_clear_active = false;
  bool async_preset_active = false;
};

enum class RegVerdict : std::uint8_t { kProved, kRefuted, kSkipped };

struct RegisterProof {
  std::string name;  ///< FF cell name, or "out:<port>" on comb-only designs
  RegVerdict verdict = RegVerdict::kSkipped;
  std::string reason;   ///< skip reason or refutation description
  bool trivial = false;  ///< cones hash-consed to one literal; no SAT call
  /// Verdict restored by the ECO layer (SymfeOptions::restored_proofs): the
  /// register's cone is untouched by the edit, so the stored proof stands;
  /// conflicts/decisions are the statistics of the run that produced it.
  bool restored = false;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  double ms = 0.0;
  std::optional<Counterexample> cex;  ///< present on kRefuted
};

/// Token-flow admissibility of the handshake protocol over the region DDG.
struct ProtocolReport {
  bool checked = false;
  bool admissible = true;
  std::string controller;
  int channels = 0;             ///< cross-region data channels modeled
  std::size_t states_explored = 0;
  std::string violation;
  std::vector<std::string> trace;  ///< firing sequence to the violation
};

struct SymfeReport {
  std::vector<RegisterProof> registers;
  ProtocolReport protocol;
  std::size_t proved = 0;
  std::size_t refuted = 0;
  std::size_t skipped = 0;
  std::size_t restored = 0;  ///< subset of proved: ECO-restored, not re-run
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  double total_ms = 0.0;
  bool comb_only = false;  ///< no registers: output-port miters instead
  std::string note;
  [[nodiscard]] bool ok() const {
    return refuted == 0 && skipped == 0 && protocol.admissible;
  }
};

/// Region/DDG summary for the protocol check, built by the caller (the
/// flow or the fuzz oracle) so this library needs no core dependencies.
struct ProtocolInput {
  int n_groups = 0;
  std::vector<bool> active;             ///< per group: has sequential cells
  std::vector<std::vector<int>> preds;  ///< DDG predecessors per group
};

/// A previously proved register the ECO layer vouches for: its fan-in cone
/// is untouched by the current edit, so the stored verdict still holds.
struct RestoredProof {
  bool trivial = false;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
};

struct SymfeOptions {
  std::string clock_port = "clk";
  /// Per-register conflict budget; exhausting it yields kSkipped (honest
  /// "don't know"), never a silent pass.
  std::uint64_t max_conflicts = 200000;
  bool want_counterexample = true;
  bool check_protocol = true;
  async::ControllerKind controller = async::ControllerKind::kSemiDecoupled;
  std::optional<ProtocolInput> protocol;
  /// ECO restore map (core/eco.h), keyed by register name: listed registers
  /// get a synthesized kProved RegisterProof instead of a miter + SAT run.
  /// The caller guarantees validity (clean fan-in cone under the current
  /// edit); must outlive the prover call.  nullptr: prove everything.
  const std::unordered_map<std::string, RestoredProof>* restored_proofs =
      nullptr;
};

/// Proves projection equivalence for every replaced register (per-register
/// proofs run on the core::parallel pool; verdicts are deterministic at any
/// --jobs).  `sync_bound` is the pre-flow snapshot, `desync_bound` the
/// converted module.
SymfeReport proveFlowEquivalence(const liberty::BoundModule& sync_bound,
                                 const liberty::BoundModule& desync_bound,
                                 const SymfeOptions& options = {});

struct ReplayResult {
  bool ran = false;
  bool matches_solver = false;
  std::string detail;
  Val bitsim_value = Val::kX;  ///< captured value (kX: no capture recorded)
  Val event_value = Val::kX;
  bool bitsim_captured = false;
  bool event_captured = false;
};

/// Replays a counterexample's sync-side vector on both simulation engines:
/// primary inputs set, register state and free nets forced, one clock
/// cycle.  When the vector implies a live capture, both engines must
/// record exactly the solver's sync value; when it implies a held or
/// async-forced state, both engines must record no capture.  Callers treat
/// a mismatch as a hard failure (solver model vs simulation divergence).
ReplayResult replayCounterexample(const liberty::BoundModule& sync_bound,
                                  const std::string& register_name,
                                  const Counterexample& cex,
                                  const SymfeOptions& options = {});

/// Standalone protocol admissibility check (also used by the prover).
ProtocolReport checkProtocol(const ProtocolInput& input,
                             async::ControllerKind controller);

}  // namespace desync::sim::symfe
