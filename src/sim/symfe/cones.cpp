// Cone walk (see cones.h for the substitution-glue rules).
#include "sim/symfe/cones.h"

#include <cctype>

namespace desync::sim::symfe {

namespace {

// Deep enough for any real comb path (the levelizer sees tens of levels on
// the ARM-class core); a guard, not a tuning knob.
constexpr int kMaxDepth = 20000;

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool isRawEnableNet(std::string_view name) {
  if (name.size() < 4 || name[0] != 'G') return false;
  std::size_t i = 1;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i]))) {
    ++i;
  }
  if (i == 1 || i + 3 != name.size()) return false;
  return name[i] == '_' && name[i + 1] == 'g' &&
         (name[i + 2] == 'm' || name[i + 2] == 's');
}

sat::Lit ConeExtractor::walk(netlist::NetId net, int depth) {
  if (depth > kMaxDepth) {
    throw ConeError("symfe: combinational cone too deep at net " +
                    std::string(module_.netName(net)));
  }
  if (const auto it = memo_.find(net.value); it != memo_.end()) {
    return it->second;
  }
  if (!expanding_.insert(net.value).second) {
    throw ConeError("symfe: combinational cycle through net " +
                    std::string(module_.netName(net)));
  }
  const sat::Lit lit = compute(net, depth);
  expanding_.erase(net.value);
  memo_.emplace(net.value, lit);
  return lit;
}

sat::Lit ConeExtractor::compute(netlist::NetId id, int depth) {
  const netlist::Net& n = module_.net(id);
  const std::string name(module_.netName(id));
  if (desync_side_ && isRawEnableNet(name)) return enc_.constLit(true);

  switch (n.driver.kind) {
    case netlist::TermKind::kConst0:
      return enc_.constLit(false);
    case netlist::TermKind::kConst1:
      return enc_.constLit(true);
    case netlist::TermKind::kPort:
      return enc_.leaf("in:" + name);
    case netlist::TermKind::kNone:
      return enc_.leaf("net:" + name);
    case netlist::TermKind::kCellPin:
      break;
  }

  const netlist::CellId cid = n.driver.cell();
  const std::string cname(module_.cellName(cid));
  const liberty::BoundType* bt = bound_.typeOf(cid);
  if (bt == nullptr) {
    throw ConeError("symfe: unbound cell type " +
                    std::string(module_.cellType(cid)) + " driving net " +
                    name);
  }

  switch (bt->kind) {
    case liberty::CellKind::kCombinational: {
      for (const liberty::BoundOutput& o : bt->outputs) {
        if (bound_.pinNet(cid, o.pin) != id) continue;
        std::vector<sat::Lit> ins;
        ins.reserve(o.inputs.size());
        for (const std::uint16_t p : o.inputs) {
          const netlist::NetId in_net = bound_.pinNet(cid, p);
          if (!in_net.valid()) {
            throw ConeError("symfe: unconnected input on " + cname);
          }
          ins.push_back(walk(in_net, depth + 1));
        }
        return enc_.table(o.table, std::move(ins));
      }
      throw ConeError("symfe: no output function of " + cname +
                      " drives net " + name);
    }
    case liberty::CellKind::kFlipFlop: {
      const liberty::BoundSeqPins& bp = bt->seq_pins;
      const sat::Lit l = enc_.leaf("reg:" + cname);
      if (bound_.rolePinNet(cid, bp.q) == id) return l;
      if (bp.qn >= 0 && bound_.rolePinNet(cid, bp.qn) == id) return ~l;
      throw ConeError("symfe: unexpected flip-flop output pin on " + cname);
    }
    case liberty::CellKind::kLatch: {
      if (!desync_side_) {
        throw ConeError("symfe: transparent latch " + cname +
                        " in a synchronous cone");
      }
      const liberty::BoundSeqPins& bp = bt->seq_pins;
      if (endsWith(cname, "_Ls")) {
        const sat::Lit l =
            enc_.leaf("reg:" + cname.substr(0, cname.size() - 3));
        if (bound_.rolePinNet(cid, bp.q) == id) return l;
        if (bp.qn >= 0 && bound_.rolePinNet(cid, bp.qn) == id) return ~l;
        throw ConeError("symfe: unexpected latch output pin on " + cname);
      }
      // Master / enable latches (_Lm, _cenLm, _cenLs) are transparent at
      // the settled pre-capture instant: value = data cone.
      const netlist::NetId d = bound_.rolePinNet(cid, bp.data);
      if (!d.valid()) {
        throw ConeError("symfe: latch " + cname + " has no data cone");
      }
      return walk(d, depth + 1);
    }
    case liberty::CellKind::kClockGate:
      throw ConeError("symfe: clock gate " + cname + " in a data cone");
  }
  throw ConeError("symfe: unclassified cell " + cname);
}

}  // namespace desync::sim::symfe
