// Hash-consed canonical Tseitin encoder over sat::Solver.
//
// Circuit cones are encoded bottom-up through `table()`, which takes a
// liberty truth table (bit r = output for input row r, input i contributing
// bit i of r — the same convention as sim/value.h's evalTable3) and the
// already-encoded input literals.  Every node is canonicalized before
// allocation: constant inputs are cofactored away, duplicate/complementary
// inputs merged, vacuous inputs dropped, single-input identities and
// inverters returned as (negated) literals, input phases normalized to
// positive variables, inputs sorted by variable index, and the output phase
// normalized so a function and its complement share one variable.  Two
// cones computing the same function of the same leaves therefore collapse
// to the same literal — which is what makes the sync/desync miters of
// untouched logic trivially UNSAT (often equal literals, no SAT call).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sat/solver.h"

namespace desync::sim::symfe {

class Encoder {
 public:
  explicit Encoder(sat::Solver& solver) : solver_(solver) {}

  /// Constant literal (lazily reserves one variable fixed true).
  sat::Lit constLit(bool value);

  /// True when `l` is the constant literal; sets `value` accordingly.
  [[nodiscard]] bool isConst(sat::Lit l, bool& value) const;

  /// Leaf variable keyed by name ("in:<net>", "reg:<ff>", "net:<net>").
  /// The same key always returns the same literal, which is how the sync
  /// and desync cones of one register are built over shared inputs/state.
  sat::Lit leaf(const std::string& key);

  /// Canonicalized node for `table` over `inputs` (n <= 6).
  sat::Lit table(std::uint64_t table, std::vector<sat::Lit> inputs);

  sat::Lit andLit(sat::Lit a, sat::Lit b) { return table(0x8, {a, b}); }
  sat::Lit orLit(sat::Lit a, sat::Lit b) { return table(0xE, {a, b}); }
  sat::Lit xorLit(sat::Lit a, sat::Lit b) { return table(0x6, {a, b}); }
  /// s ? t : e  (inputs s,t,e at row-bit positions 0,1,2 -> table 0xD8).
  sat::Lit iteLit(sat::Lit s, sat::Lit t, sat::Lit e) {
    return table(0xD8, {s, t, e});
  }

  /// Leaf keys -> variables, ordered by key (deterministic model decode).
  [[nodiscard]] const std::map<std::string, sat::Var>& leaves() const {
    return leaves_;
  }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }

 private:
  struct NodeKey {
    std::uint64_t table = 0;
    std::vector<std::int32_t> ins;
    bool operator==(const NodeKey& o) const {
      return table == o.table && ins == o.ins;
    }
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = k.table * 0x9e3779b97f4a7c15ull;
      for (std::int32_t v : k.ins) {
        h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) +
             0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      }
      return static_cast<std::size_t>(h);
    }
  };

  sat::Solver& solver_;
  sat::Lit true_lit_ = sat::kLitUndef;
  std::map<std::string, sat::Var> leaves_;
  std::unordered_map<NodeKey, sat::Lit, NodeKeyHash> nodes_map_;
  std::size_t nodes_ = 0;
};

}  // namespace desync::sim::symfe
