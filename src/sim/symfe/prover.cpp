// Per-register miter construction, proof orchestration, counterexample
// decode and replay (see symfe.h for the projection-equivalence statement).
//
// Miter shape per register, mirroring both engines' sequential update
// exactly (bitsim nextStateWord / event evalSeq):
//
//   next = sync_override( scan_mux( D ) )          -- scan first, sync wins
//   vs   = clear ? 0 : preset ? 1 : Es ? next : q  -- async dominates, then
//                                                     hold when gated off
//   vd   = Ed ? SD : q                             -- slave latch projection
//
// where Es is the register's clock-gate enable cone (constant true for a
// root-clocked FF) and Ed/SD are the G/D cones of the *_Ls slave latch.
// UNSAT of (vs != vd) proves the projection; a model decodes into a named
// input/state vector that replayCounterexample() re-runs on both simulation
// engines as an independent end-to-end check of the encoding itself.
#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "sim/bitsim/bitsim.h"
#include "sim/simulator.h"
#include "sim/symfe/cones.h"
#include "sim/symfe/encoder.h"
#include "sim/symfe/symfe.h"
#include "trace/trace.h"

namespace desync::sim::symfe {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One unit of proof work: a replaced register, or (comb-only designs) an
/// output port compared as a plain combinational miter.
struct Task {
  std::string name;  ///< FF cell name, or "out:<port>"
  netlist::CellId sync_cell;
  netlist::CellId desync_cell;  ///< the *_Ls slave; invalid => skip
  bool comb_output = false;
  netlist::NetId sync_net;    ///< output-port net (comb tasks)
  netlist::NetId desync_net;
};

bool litValue(const sat::Solver& solver, sat::Lit l) {
  return solver.modelValue(sat::varOf(l)) != sat::signOf(l);
}

netlist::NetId portNetOf(const netlist::Module& m, std::string_view port) {
  const netlist::PortId pid = m.findPort(port);
  return pid.valid() ? m.port(pid).net : netlist::NetId{};
}

/// Independent scalar evaluation of a desync-side net under a decoded
/// model.  Same classification rules as ConeExtractor, but in the value
/// domain with sim/value.h primitives — no CNF involved, so agreement with
/// the solver model cross-checks the whole Tseitin pipeline.
class DesyncEval {
 public:
  DesyncEval(const liberty::BoundModule& bound, const Counterexample& cex)
      : bound_(bound), module_(bound.module()) {
    for (const auto& [k, v] : cex.inputs) leaves_["in:" + k] = v;
    for (const auto& [k, v] : cex.states) leaves_["reg:" + k] = v;
    for (const auto& [k, v] : cex.frees) leaves_["net:" + k] = v;
  }

  Val net(netlist::NetId id) { return walk(id, 0); }

  Val leaf(const std::string& key) const {
    const auto it = leaves_.find(key);
    return it == leaves_.end() ? Val::kX : fromBool(it->second);
  }

 private:
  Val walk(netlist::NetId id, int depth) {
    if (depth > 20000) return Val::kX;
    if (const auto it = memo_.find(id.value); it != memo_.end()) {
      return it->second;
    }
    const Val v = compute(id, depth);
    memo_.emplace(id.value, v);
    return v;
  }

  Val compute(netlist::NetId id, int depth) {
    const netlist::Net& n = module_.net(id);
    const std::string name(module_.netName(id));
    if (isRawEnableNet(name)) return Val::k1;
    switch (n.driver.kind) {
      case netlist::TermKind::kConst0:
        return Val::k0;
      case netlist::TermKind::kConst1:
        return Val::k1;
      case netlist::TermKind::kPort:
        return leaf("in:" + name);
      case netlist::TermKind::kNone:
        return leaf("net:" + name);
      case netlist::TermKind::kCellPin:
        break;
    }
    const netlist::CellId cid = n.driver.cell();
    const std::string cname(module_.cellName(cid));
    const liberty::BoundType* bt = bound_.typeOf(cid);
    if (bt == nullptr) return Val::kX;
    switch (bt->kind) {
      case liberty::CellKind::kCombinational: {
        for (const liberty::BoundOutput& o : bt->outputs) {
          if (bound_.pinNet(cid, o.pin) != id) continue;
          Val in[6];
          const unsigned nin =
              std::min<unsigned>(6, static_cast<unsigned>(o.inputs.size()));
          for (unsigned i = 0; i < nin; ++i) {
            const netlist::NetId in_net = bound_.pinNet(cid, o.inputs[i]);
            in[i] = in_net.valid() ? walk(in_net, depth + 1) : Val::kX;
          }
          return evalTable3(o.table, in, nin);
        }
        return Val::kX;
      }
      case liberty::CellKind::kFlipFlop: {
        const Val l = leaf("reg:" + cname);
        if (bt->seq_pins.qn >= 0 &&
            bound_.rolePinNet(cid, bt->seq_pins.qn) == id) {
          return invert(l);
        }
        return l;
      }
      case liberty::CellKind::kLatch: {
        if (cname.size() > 3 &&
            cname.compare(cname.size() - 3, 3, "_Ls") == 0) {
          const Val l = leaf("reg:" + cname.substr(0, cname.size() - 3));
          if (bt->seq_pins.qn >= 0 &&
              bound_.rolePinNet(cid, bt->seq_pins.qn) == id) {
            return invert(l);
          }
          return l;
        }
        const netlist::NetId d = bound_.rolePinNet(cid, bt->seq_pins.data);
        return d.valid() ? walk(d, depth + 1) : Val::kX;
      }
      case liberty::CellKind::kClockGate:
        return Val::kX;
    }
    return Val::kX;
  }

  const liberty::BoundModule& bound_;
  const netlist::Module& module_;
  std::unordered_map<std::string, bool> leaves_;
  std::unordered_map<std::uint32_t, Val> memo_;
};

Counterexample decodeModel(const sat::Solver& solver, const Encoder& enc,
                           sat::Lit vs, sat::Lit vd, sat::Lit clear_active,
                           sat::Lit preset_active, sat::Lit es) {
  Counterexample cex;
  for (const auto& [key, var] : enc.leaves()) {
    const bool v = solver.modelValue(var);
    if (key.rfind("in:", 0) == 0) {
      cex.inputs.emplace_back(key.substr(3), v);
    } else if (key.rfind("reg:", 0) == 0) {
      cex.states.emplace_back(key.substr(4), v);
    } else if (key.rfind("net:", 0) == 0) {
      cex.frees.emplace_back(key.substr(4), v);
    }
  }
  cex.sync_value = litValue(solver, vs);
  cex.desync_value = litValue(solver, vd);
  cex.async_clear_active = litValue(solver, clear_active);
  cex.async_preset_active = litValue(solver, preset_active);
  cex.sync_captures = !cex.async_clear_active && !cex.async_preset_active &&
                      litValue(solver, es);
  return cex;
}

/// Adds the miter clauses, solves, and fills the verdict.  `recheck`
/// re-evaluates the desync-side value under the model through an
/// independent scalar path; disagreement marks the proof "internal:".
template <typename Recheck>
void finishMiter(RegisterProof& proof, sat::Solver& solver, Encoder& enc,
                 sat::Lit vs, sat::Lit vd, sat::Lit clear_active,
                 sat::Lit preset_active, sat::Lit es,
                 const SymfeOptions& opt, Recheck&& recheck) {
  if (vs == vd) {
    proof.trivial = true;
    proof.verdict = RegVerdict::kProved;
    return;
  }
  solver.addClause(vs, vd);
  solver.addClause(~vs, ~vd);
  sat::Limits limits;
  limits.max_conflicts = opt.max_conflicts;
  const sat::Verdict v = solver.solve(limits);
  proof.conflicts = solver.stats().conflicts;
  proof.decisions = solver.stats().decisions;
  if (v == sat::Verdict::kUnsat) {
    proof.verdict = RegVerdict::kProved;
    return;
  }
  if (v == sat::Verdict::kUnknown) {
    proof.verdict = RegVerdict::kSkipped;
    proof.reason = "conflict budget (" + std::to_string(opt.max_conflicts) +
                   ") exhausted";
    return;
  }
  proof.verdict = RegVerdict::kRefuted;
  if (!opt.want_counterexample) {
    proof.reason = "miter satisfiable";
    return;
  }
  Counterexample cex =
      decodeModel(solver, enc, vs, vd, clear_active, preset_active, es);
  const Val scalar = recheck(cex);
  if (scalar != fromBool(cex.desync_value)) {
    proof.reason =
        "internal: desync-side scalar re-evaluation disagrees with the "
        "solver model";
  } else {
    proof.reason = std::string("projection differs: sync yields ") +
                   (cex.sync_value ? "1" : "0") + ", desync yields " +
                   (cex.desync_value ? "1" : "0");
  }
  proof.cex = std::move(cex);
}

RegisterProof proveRegister(const liberty::BoundModule& sb,
                            const liberty::BoundModule& db, const Task& task,
                            netlist::NetId sync_clk,
                            const SymfeOptions& opt) {
  RegisterProof proof;
  proof.name = task.name;
  const netlist::Module& sm = sb.module();

  if (!task.desync_cell.valid()) {
    proof.reason =
        "no desynchronized counterpart (" + task.name + "_Ls not found)";
    return proof;
  }

  sat::Solver solver;
  Encoder enc(solver);
  ConeExtractor sync_cone(sb, enc, /*desync_side=*/false);
  ConeExtractor desync_cone(db, enc, /*desync_side=*/true);

  const liberty::BoundType& bt = sb.typeOrThrow(task.sync_cell);
  const liberty::SeqClass& sc = *bt.seq;
  const liberty::BoundSeqPins& bp = bt.seq_pins;

  const sat::Lit q_old = enc.leaf("reg:" + task.name);

  // Next-state function: data, scan mux on top, synchronous set/reset on
  // top of that — the engines apply them in exactly this order.
  const netlist::NetId d_net = sb.rolePinNet(task.sync_cell, bp.data);
  if (!d_net.valid()) {
    proof.reason = "unconnected data pin";
    return proof;
  }
  sat::Lit next = sync_cone.literalFor(d_net);
  if (bp.scan_en >= 0) {
    const netlist::NetId se_net = sb.rolePinNet(task.sync_cell, bp.scan_en);
    if (se_net.valid()) {
      const netlist::NetId si_net = sb.rolePinNet(task.sync_cell, bp.scan_in);
      if (!si_net.valid()) {
        proof.reason = "scan enable connected but scan input is not";
        return proof;
      }
      next = enc.iteLit(sync_cone.literalFor(se_net),
                        sync_cone.literalFor(si_net), next);
    }
  }
  if (bp.sync >= 0) {
    const netlist::NetId sn = sb.rolePinNet(task.sync_cell, bp.sync);
    if (sn.valid()) {
      sat::Lit active = sync_cone.literalFor(sn);
      if (sc.sync_active_low) active = ~active;
      next = enc.iteLit(active, enc.constLit(sc.sync_is_set), next);
    }
  }

  // Capture enable: constant true for a root-clocked FF, the E cone of the
  // driving ICG otherwise (one gating level, same contract as the bitsim
  // plan compiler).
  const netlist::NetId clk_net = sb.rolePinNet(task.sync_cell, bp.clock);
  if (!clk_net.valid() || !sync_clk.valid()) {
    proof.reason = "register clock does not resolve to the clock port";
    return proof;
  }
  sat::Lit es = enc.constLit(true);
  if (clk_net != sync_clk) {
    const netlist::Net& cn = sm.net(clk_net);
    const liberty::BoundType* it =
        cn.driver.isCellPin() ? sb.typeOf(cn.driver.cell()) : nullptr;
    if (it == nullptr || it->kind != liberty::CellKind::kClockGate) {
      proof.reason = "register clock does not resolve to the clock port";
      return proof;
    }
    const netlist::CellId icg = cn.driver.cell();
    if (sb.rolePinNet(icg, it->seq_pins.clock) != sync_clk) {
      proof.reason = "multi-level clock gating is out of scope";
      return proof;
    }
    const netlist::NetId e_net = sb.rolePinNet(icg, it->seq_pins.data);
    if (!e_net.valid()) {
      proof.reason = "clock gate has no enable cone";
      return proof;
    }
    es = sync_cone.literalFor(e_net);
  }

  sat::Lit vs = enc.iteLit(es, next, q_old);
  sat::Lit clear_active = enc.constLit(false);
  if (bp.clear >= 0) {
    const netlist::NetId n = sb.rolePinNet(task.sync_cell, bp.clear);
    if (n.valid()) {
      clear_active = sync_cone.literalFor(n);
      if (sc.async_clear_active_low) clear_active = ~clear_active;
    }
  }
  sat::Lit preset_active = enc.constLit(false);
  if (bp.preset >= 0) {
    const netlist::NetId n = sb.rolePinNet(task.sync_cell, bp.preset);
    if (n.valid()) {
      preset_active = sync_cone.literalFor(n);
      if (sc.async_preset_active_low) preset_active = ~preset_active;
    }
  }
  // Async dominates everything (both engines branch clear before preset).
  vs = enc.iteLit(preset_active, enc.constLit(true), vs);
  vs = enc.iteLit(clear_active, enc.constLit(false), vs);

  // Desync side: the slave latch after the handshake — its G cone cut at
  // the raw enables (granted => transparent), data through the master.
  const liberty::BoundType* lt = db.typeOf(task.desync_cell);
  if (lt == nullptr || lt->kind != liberty::CellKind::kLatch) {
    proof.reason = "desynchronized counterpart is not a latch";
    return proof;
  }
  const netlist::NetId g_net = db.rolePinNet(task.desync_cell,
                                             lt->seq_pins.clock);
  const netlist::NetId sd_net = db.rolePinNet(task.desync_cell,
                                              lt->seq_pins.data);
  if (!g_net.valid() || !sd_net.valid()) {
    proof.reason = "slave latch missing enable or data connection";
    return proof;
  }
  const sat::Lit ed = desync_cone.literalFor(g_net);
  const sat::Lit sd = desync_cone.literalFor(sd_net);
  const sat::Lit vd = enc.iteLit(ed, sd, q_old);

  finishMiter(proof, solver, enc, vs, vd, clear_active, preset_active, es,
              opt, [&](const Counterexample& cex) {
                DesyncEval ev(db, cex);
                const Val g = ev.net(g_net);
                if (g == Val::k1) return ev.net(sd_net);
                if (g == Val::k0) return ev.leaf("reg:" + task.name);
                return Val::kX;
              });
  return proof;
}

RegisterProof proveOutput(const liberty::BoundModule& sb,
                          const liberty::BoundModule& db, const Task& task,
                          const SymfeOptions& opt) {
  RegisterProof proof;
  proof.name = task.name;
  if (!task.desync_net.valid()) {
    proof.reason = "output port missing from the desynchronized module";
    return proof;
  }
  sat::Solver solver;
  Encoder enc(solver);
  ConeExtractor sync_cone(sb, enc, /*desync_side=*/false);
  ConeExtractor desync_cone(db, enc, /*desync_side=*/true);
  const sat::Lit vs = sync_cone.literalFor(task.sync_net);
  const sat::Lit vd = desync_cone.literalFor(task.desync_net);
  finishMiter(proof, solver, enc, vs, vd, enc.constLit(false),
              enc.constLit(false), enc.constLit(true), opt,
              [&](const Counterexample& cex) {
                DesyncEval ev(db, cex);
                return ev.net(task.desync_net);
              });
  return proof;
}

RegisterProof proveTask(const liberty::BoundModule& sb,
                        const liberty::BoundModule& db, const Task& task,
                        netlist::NetId sync_clk, const SymfeOptions& opt) {
  trace::Span span("symfe_prove", "sim");
  const auto t0 = Clock::now();
  RegisterProof proof;
  try {
    proof = task.comb_output ? proveOutput(sb, db, task, opt)
                             : proveRegister(sb, db, task, sync_clk, opt);
  } catch (const ConeError& e) {
    proof.name = task.name;
    proof.verdict = RegVerdict::kSkipped;
    proof.reason = e.what();
  } catch (const std::exception& e) {
    proof.name = task.name;
    proof.verdict = RegVerdict::kSkipped;
    proof.reason = std::string("internal: ") + e.what();
  }
  proof.ms = msSince(t0);
  return proof;
}

}  // namespace

SymfeReport proveFlowEquivalence(const liberty::BoundModule& sync_bound,
                                 const liberty::BoundModule& desync_bound,
                                 const SymfeOptions& options) {
  const auto t0 = Clock::now();
  SymfeReport rep;
  const netlist::Module& sm = sync_bound.module();
  const netlist::Module& dm = desync_bound.module();
  const netlist::NetId sync_clk = portNetOf(sm, options.clock_port);

  std::vector<Task> tasks;
  sm.forEachCell([&](netlist::CellId cid) {
    const liberty::BoundType* bt = sync_bound.typeOf(cid);
    if (bt == nullptr || bt->kind != liberty::CellKind::kFlipFlop) return;
    Task t;
    t.name = std::string(sm.cellName(cid));
    t.sync_cell = cid;
    t.desync_cell = dm.findCell(t.name + "_Ls");
    tasks.push_back(std::move(t));
  });

  if (tasks.empty()) {
    // Purely combinational design: no projection to prove, but the check
    // must not be vacuous — compare every output port as a comb miter.
    rep.comb_only = true;
    for (const netlist::Port& p : sm.ports()) {
      if (p.dir != netlist::PortDir::kOutput || !p.net.valid()) continue;
      Task t;
      const std::string pname(sm.design().names().str(p.name));
      t.name = "out:" + pname;
      t.comb_output = true;
      t.sync_net = p.net;
      const netlist::PortId dp = dm.findPort(pname);
      if (dp.valid()) t.desync_net = dm.port(dp).net;
      tasks.push_back(std::move(t));
    }
    if (tasks.empty()) {
      rep.note = "no registers and no output ports; nothing to prove";
    } else {
      rep.note = "no registers replaced; proved output-port equivalence";
    }
  }

  rep.registers = core::parallelMap(tasks.size(), [&](std::size_t i) {
    const Task& task = tasks[i];
    if (options.restored_proofs != nullptr && !task.comb_output) {
      const auto it = options.restored_proofs->find(task.name);
      if (it != options.restored_proofs->end()) {
        // ECO restore: the caller vouches that this register's cone is
        // untouched, so the stored verdict stands without a miter.
        RegisterProof p;
        p.name = task.name;
        p.verdict = RegVerdict::kProved;
        p.trivial = it->second.trivial;
        p.restored = true;
        p.conflicts = it->second.conflicts;
        p.decisions = it->second.decisions;
        return p;
      }
    }
    return proveTask(sync_bound, desync_bound, task, sync_clk, options);
  });

  for (const RegisterProof& p : rep.registers) {
    if (p.restored) ++rep.restored;
    switch (p.verdict) {
      case RegVerdict::kProved:
        ++rep.proved;
        break;
      case RegVerdict::kRefuted:
        ++rep.refuted;
        break;
      case RegVerdict::kSkipped:
        ++rep.skipped;
        break;
    }
    rep.conflicts += p.conflicts;
    rep.decisions += p.decisions;
  }
  if (options.check_protocol && options.protocol) {
    rep.protocol = checkProtocol(*options.protocol, options.controller);
  }
  rep.total_ms = msSince(t0);
  return rep;
}

ReplayResult replayCounterexample(const liberty::BoundModule& sync_bound,
                                  const std::string& register_name,
                                  const Counterexample& cex,
                                  const SymfeOptions& options) {
  ReplayResult rr;
  const netlist::Module& m = sync_bound.module();
  const bool comb = register_name.rfind("out:", 0) == 0;

  std::unordered_map<std::string, Val> in_vals;
  for (const auto& [name, v] : cex.inputs) in_vals[name] = fromBool(v);

  auto portVal = [&](const std::string& net_name) {
    const auto it = in_vals.find(net_name);
    return it == in_vals.end() ? Val::k0 : it->second;
  };

  // ---- compiled bit-parallel engine -------------------------------------
  try {
    bitsim::PlanOptions popt;
    popt.clock_port = options.clock_port;
    const bitsim::BitPlan plan = bitsim::compilePlan(sync_bound, popt);
    bitsim::BitSim bs(plan);
    for (const netlist::Port& p : m.ports()) {
      if (p.dir != netlist::PortDir::kInput || !p.net.valid()) continue;
      const std::string pname(m.design().names().str(p.name));
      if (pname == options.clock_port) continue;
      bs.set(m.netName(p.net), portVal(std::string(m.netName(p.net))));
    }
    for (const auto& [name, v] : cex.states) {
      const netlist::CellId c = m.findCell(name);
      if (!c.valid()) continue;
      const liberty::BoundType* bt = sync_bound.typeOf(c);
      if (bt == nullptr || bt->seq == nullptr) continue;
      const netlist::NetId q = sync_bound.rolePinNet(c, bt->seq_pins.q);
      const netlist::NetId qn = sync_bound.rolePinNet(c, bt->seq_pins.qn);
      if (q.valid()) bs.forceNet(m.netName(q), 0, fromBool(v));
      if (qn.valid()) bs.forceNet(m.netName(qn), 0, fromBool(!v));
    }
    for (const auto& [name, v] : cex.frees) {
      bs.forceNet(name, 0, fromBool(v));
    }
    if (comb) {
      bs.settle();
      const netlist::PortId pid = m.findPort(register_name.substr(4));
      if (pid.valid() && m.port(pid).net.valid()) {
        rr.bitsim_value = bs.value(m.netName(m.port(pid).net), 0);
        rr.bitsim_captured = true;
      }
    } else {
      bs.cycle(1);
      for (const CaptureLog& log : bs.captures(0)) {
        if (log.element != register_name) continue;
        if (!log.values.empty()) {
          rr.bitsim_captured = true;
          rr.bitsim_value = log.values.back();
        }
        break;
      }
    }
  } catch (const std::exception& e) {
    rr.detail = std::string("bitsim replay failed: ") + e.what();
    return rr;
  }

  // ---- event-driven engine ----------------------------------------------
  try {
    Simulator es(sync_bound);
    if (!comb) es.setInput(options.clock_port, Val::k0);
    for (const netlist::Port& p : m.ports()) {
      if (p.dir != netlist::PortDir::kInput || !p.net.valid()) continue;
      const std::string pname(m.design().names().str(p.name));
      if (pname == options.clock_port) continue;
      es.setInput(pname, portVal(std::string(m.netName(p.net))));
    }
    for (const auto& [name, v] : cex.states) {
      const netlist::CellId c = m.findCell(name);
      if (!c.valid()) continue;
      const liberty::BoundType* bt = sync_bound.typeOf(c);
      if (bt == nullptr || bt->seq == nullptr) continue;
      const netlist::NetId q = sync_bound.rolePinNet(c, bt->seq_pins.q);
      const netlist::NetId qn = sync_bound.rolePinNet(c, bt->seq_pins.qn);
      if (q.valid()) es.forceNet(m.netName(q), fromBool(v));
      if (qn.valid()) es.forceNet(m.netName(qn), fromBool(!v));
    }
    for (const auto& [name, v] : cex.frees) {
      es.forceNet(name, fromBool(v));
    }
    es.runUntilStable(nsToPs(100000));
    if (comb) {
      rr.event_value = es.value(register_name.substr(4));
      rr.event_captured = true;
    } else {
      es.setInput(options.clock_port, Val::k1);
      es.runUntilStable(es.now() + nsToPs(100000));
      if (const CaptureLog* log = es.captureOf(register_name)) {
        if (!log->values.empty()) {
          rr.event_captured = true;
          rr.event_value = log->values.back();
        }
      }
    }
  } catch (const std::exception& e) {
    rr.detail = std::string("event replay failed: ") + e.what();
    return rr;
  }

  rr.ran = true;
  const Val expect = fromBool(cex.sync_value);
  if (comb || cex.sync_captures) {
    rr.matches_solver = rr.bitsim_captured && rr.event_captured &&
                        rr.bitsim_value == expect && rr.event_value == expect;
    if (!rr.matches_solver) {
      rr.detail = "engines disagree with the solver's captured value";
    }
  } else {
    // Held or async-forced: the new state is unobservable through the
    // forced nets, but both engines must agree nothing was captured, and
    // the solver's held value must be self-consistent.
    bool consistent = true;
    if (cex.async_clear_active && !cex.async_preset_active) {
      consistent = !cex.sync_value;
    } else if (cex.async_preset_active && !cex.async_clear_active) {
      consistent = cex.sync_value;
    }
    rr.matches_solver = !rr.bitsim_captured && !rr.event_captured &&
                        consistent;
    if (!rr.matches_solver) {
      rr.detail = "engines recorded a capture the solver says is gated off";
    }
  }
  return rr;
}

}  // namespace desync::sim::symfe
