// Token-flow admissibility of the handshake protocol over the region DDG.
//
// The per-register miters cut every cone at the raw region enables, which
// assumes the controllers grant phases in an order that never overwrites a
// datum before its consumer latched it.  That assumption is a property of
// the *protocol*, not of any cone, and is checked here on a small Petri
// net: per active region r a capacity-1 master/slave ring (M_r alternates
// with S_r), and per region-dependency edge p -> c a data place fed by S_p
// and consumed by M_c, initially holding one token (slaves reset full).
//
// Simple and semi-decoupled controllers complete each channel's four-phase
// handshake before reopening the producer, so every channel is capacity-1
// by token conservation and admissibility holds structurally.  The
// fully-decoupled controller (Furber & Day) overlaps the return-to-zero
// with computation — modeled by *omitting* the channel's complement place —
// and a producer slave can then refire before the consumer fired: a data
// place reaching two tokens means wire + latch hold distinct data and the
// older one is lost.  Exhaustive BFS over markings finds such an overrun or
// proves there is none (violating markings are not expanded, so the
// explored space is finite).
#include <algorithm>
#include <map>
#include <queue>

#include "sim/symfe/symfe.h"
#include "stg/stg.h"

namespace desync::sim::symfe {

namespace {

const char* controllerName(async::ControllerKind kind) {
  switch (kind) {
    case async::ControllerKind::kSimple:
      return "simple";
    case async::ControllerKind::kSemiDecoupled:
      return "semi-decoupled";
    case async::ControllerKind::kFullyDecoupled:
      return "fully-decoupled";
  }
  return "unknown";
}

constexpr std::size_t kMaxStates = 1u << 20;

}  // namespace

ProtocolReport checkProtocol(const ProtocolInput& input,
                             async::ControllerKind controller) {
  ProtocolReport rep;
  rep.checked = true;
  rep.controller = controllerName(controller);

  // Active regions and the cross-region channels between them.
  std::vector<int> active_ids;
  for (int g = 0; g < input.n_groups; ++g) {
    if (g < static_cast<int>(input.active.size()) && input.active[g]) {
      active_ids.push_back(g);
    }
  }
  struct Chan {
    int from = 0;
    int to = 0;
  };
  std::vector<Chan> chans;
  for (const int c : active_ids) {
    if (c >= static_cast<int>(input.preds.size())) continue;
    for (const int p : input.preds[c]) {
      if (p < static_cast<int>(input.active.size()) && input.active[p]) {
        chans.push_back(Chan{p, c});
      }
    }
  }
  rep.channels = static_cast<int>(chans.size());
  if (active_ids.empty()) return rep;

  if (controller != async::ControllerKind::kFullyDecoupled) {
    // Four-phase completion per channel: the producer's next grant waits
    // for the channel's return-to-zero, so each channel is capacity-1 by
    // token conservation — admissible with no search.
    return rep;
  }

  stg::Stg net;
  std::map<int, stg::TransIdx> master;
  std::map<int, stg::TransIdx> slave;
  for (const int g : active_ids) {
    master[g] = net.addTransition("M" + std::to_string(g) + "+");
    slave[g] = net.addTransition("S" + std::to_string(g) + "+");
    const stg::PlaceIdx a = net.addPlace(0);   // master fired, slave pending
    const stg::PlaceIdx an = net.addPlace(1);  // slave fired, master may go
    net.arcTP(master[g], a);
    net.arcPT(a, slave[g]);
    net.arcTP(slave[g], an);
    net.arcPT(an, master[g]);
  }
  std::vector<stg::PlaceIdx> data_places;
  data_places.reserve(chans.size());
  for (const Chan& ch : chans) {
    const stg::PlaceIdx d = net.addPlace(1);  // slaves reset full
    net.arcTP(slave[ch.from], d);
    net.arcPT(d, master[ch.to]);
    // Fully decoupled: no complement place — the producer does not wait
    // for the consumer before refilling.
    data_places.push_back(d);
  }

  auto overrun = [&](const stg::Marking& m) -> int {
    for (std::size_t i = 0; i < data_places.size(); ++i) {
      if (m[data_places[i]] >= 2) return static_cast<int>(i);
    }
    return -1;
  };

  // BFS with parent pointers so a violation yields its firing trace.
  struct Node {
    stg::Marking m;
    int parent = -1;
    stg::TransIdx via = 0;
  };
  std::vector<Node> nodes;
  std::map<stg::Marking, int> seen;
  nodes.push_back(Node{net.initialMarking(), -1, 0});
  seen.emplace(nodes[0].m, 0);
  std::queue<int> todo;
  todo.push(0);
  auto traceTo = [&](int idx, stg::TransIdx last) {
    std::vector<std::string> path;
    path.push_back(net.transitionLabel(last));
    for (int i = idx; i > 0; i = nodes[i].parent) {
      path.push_back(net.transitionLabel(nodes[i].via));
    }
    std::reverse(path.begin(), path.end());
    return path;
  };
  while (!todo.empty()) {
    const int idx = todo.front();
    todo.pop();
    const stg::Marking m = nodes[idx].m;
    for (const stg::TransIdx t : net.enabled(m)) {
      stg::Marking next = net.fire(m, t);
      const int over = overrun(next);
      if (over >= 0) {
        rep.admissible = false;
        rep.violation =
            "channel " + std::to_string(chans[over].from) + " -> " +
            std::to_string(chans[over].to) +
            " overruns: producer slave refires before the consumer "
            "latched (wire and latch hold distinct data)";
        rep.trace = traceTo(idx, t);
        rep.states_explored = nodes.size();
        return rep;
      }
      if (seen.find(next) != seen.end()) continue;
      const int ni = static_cast<int>(nodes.size());
      if (nodes.size() >= kMaxStates) {
        rep.admissible = false;
        rep.violation = "protocol state space exceeded the exploration bound";
        rep.states_explored = nodes.size();
        return rep;
      }
      seen.emplace(next, ni);
      nodes.push_back(Node{std::move(next), idx, t});
      todo.push(ni);
    }
  }
  rep.states_explored = nodes.size();
  return rep;
}

}  // namespace desync::sim::symfe
