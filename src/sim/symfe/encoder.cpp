// Canonicalizing Tseitin encoding (see encoder.h).
#include "sim/symfe/encoder.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace desync::sim::symfe {

namespace {

std::uint64_t tableMask(unsigned n) {
  return n >= 6 ? ~std::uint64_t{0} : (std::uint64_t{1} << (1u << n)) - 1;
}

bool tableBit(std::uint64_t t, unsigned row) { return ((t >> row) & 1) != 0; }

/// Removes input i, keeping the rows where input i == b.
std::uint64_t cofactor(std::uint64_t t, unsigned n, unsigned i, bool b) {
  std::uint64_t out = 0;
  for (unsigned r = 0; r < (1u << (n - 1)); ++r) {
    const unsigned low = r & ((1u << i) - 1);
    const unsigned high = (r >> i) << (i + 1);
    const unsigned full = high | (b ? (1u << i) : 0u) | low;
    if (tableBit(t, full)) out |= std::uint64_t{1} << r;
  }
  return out;
}

/// Substitutes input j := input i (or its complement) and removes input j.
/// Requires i < j so reduced-row bit positions below j are unchanged.
std::uint64_t mergeInput(std::uint64_t t, unsigned n, unsigned i, unsigned j,
                         bool same) {
  std::uint64_t out = 0;
  for (unsigned r = 0; r < (1u << (n - 1)); ++r) {
    const bool vi = ((r >> i) & 1) != 0;
    const bool vj = same ? vi : !vi;
    const unsigned low = r & ((1u << j) - 1);
    const unsigned high = (r >> j) << (j + 1);
    const unsigned full = high | (vj ? (1u << j) : 0u) | low;
    if (tableBit(t, full)) out |= std::uint64_t{1} << r;
  }
  return out;
}

/// Flips the polarity of input i (swaps its cofactors).
std::uint64_t flipInput(std::uint64_t t, unsigned n, unsigned i) {
  std::uint64_t out = 0;
  for (unsigned r = 0; r < (1u << n); ++r) {
    if (tableBit(t, r ^ (1u << i))) out |= std::uint64_t{1} << r;
  }
  return out;
}

/// Reorders inputs: new input k reads old input perm[k].
std::uint64_t permuteInputs(std::uint64_t t, unsigned n,
                            const std::vector<unsigned>& perm) {
  std::uint64_t out = 0;
  for (unsigned r = 0; r < (1u << n); ++r) {
    unsigned orig = 0;
    for (unsigned k = 0; k < n; ++k) {
      if ((r >> k) & 1) orig |= 1u << perm[k];
    }
    if (tableBit(t, orig)) out |= std::uint64_t{1} << r;
  }
  return out;
}

}  // namespace

sat::Lit Encoder::constLit(bool value) {
  if (true_lit_ == sat::kLitUndef) {
    true_lit_ = sat::mkLit(solver_.newVar());
    solver_.addClause(true_lit_);
  }
  return value ? true_lit_ : ~true_lit_;
}

bool Encoder::isConst(sat::Lit l, bool& value) const {
  if (true_lit_ == sat::kLitUndef) return false;
  if (l == true_lit_) {
    value = true;
    return true;
  }
  if (l == ~true_lit_) {
    value = false;
    return true;
  }
  return false;
}

sat::Lit Encoder::leaf(const std::string& key) {
  if (const auto it = leaves_.find(key); it != leaves_.end()) {
    return sat::mkLit(it->second);
  }
  const sat::Var v = solver_.newVar();
  leaves_.emplace(key, v);
  return sat::mkLit(v);
}

sat::Lit Encoder::table(std::uint64_t t, std::vector<sat::Lit> in) {
  unsigned n = static_cast<unsigned>(in.size());
  if (n > 6) {
    throw std::logic_error("symfe: table node with more than 6 inputs");
  }
  t &= tableMask(n);

  // (1) Cofactor constant inputs away.
  for (unsigned i = 0; i < n; ++i) {
    bool cv = false;
    if (isConst(in[i], cv)) {
      const std::uint64_t nt = cofactor(t, n, i, cv);
      in.erase(in.begin() + i);
      return table(nt, std::move(in));
    }
  }
  // (2) Merge duplicate / complementary inputs.
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) {
      if (sat::varOf(in[i]) == sat::varOf(in[j])) {
        const std::uint64_t nt = mergeInput(t, n, i, j, in[i] == in[j]);
        in.erase(in.begin() + j);
        return table(nt, std::move(in));
      }
    }
  }
  // (3) Drop vacuous inputs (equal cofactors).
  for (unsigned i = 0; i < n; ++i) {
    if (cofactor(t, n, i, false) == cofactor(t, n, i, true)) {
      const std::uint64_t nt = cofactor(t, n, i, false);
      in.erase(in.begin() + i);
      return table(nt, std::move(in));
    }
  }
  // (4) Base cases.
  if (n == 0) return constLit((t & 1) != 0);
  if (n == 1) return t == 0b10 ? in[0] : ~in[0];
  // (5) Input-phase normalization: all inputs positive.
  for (unsigned i = 0; i < n; ++i) {
    if (sat::signOf(in[i])) {
      t = flipInput(t, n, i);
      in[i] = ~in[i];
    }
  }
  // (6) Sort inputs ascending by variable (canonical argument order).
  std::vector<unsigned> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](unsigned a, unsigned b) { return in[a].x < in[b].x; });
  bool sorted = true;
  for (unsigned k = 0; k < n; ++k) sorted = sorted && perm[k] == k;
  if (!sorted) {
    t = permuteInputs(t, n, perm);
    std::vector<sat::Lit> reordered(n);
    for (unsigned k = 0; k < n; ++k) reordered[k] = in[perm[k]];
    in = std::move(reordered);
  }
  // (7) Output-phase normalization: stored tables have row 0 -> 0, so a
  // function and its complement share one variable.
  const bool negate = (t & 1) != 0;
  if (negate) t = ~t & tableMask(n);

  NodeKey key;
  key.table = t;
  key.ins.reserve(n);
  for (const sat::Lit l : in) key.ins.push_back(l.x);
  if (const auto it = nodes_map_.find(key); it != nodes_map_.end()) {
    return negate ? ~it->second : it->second;
  }

  const sat::Lit v = sat::mkLit(solver_.newVar());
  // Full row encoding: (inputs == r) -> (v == t[r]) for every row.  At most
  // 64 clauses of n+1 literals; complete in both directions.
  std::vector<sat::Lit> clause;
  for (unsigned r = 0; r < (1u << n); ++r) {
    clause.clear();
    for (unsigned i = 0; i < n; ++i) {
      clause.push_back(((r >> i) & 1) ? ~in[i] : in[i]);
    }
    clause.push_back(tableBit(t, r) ? v : ~v);
    solver_.addClause(clause);
  }
  ++nodes_;
  nodes_map_.emplace(std::move(key), v);
  return negate ? ~v : v;
}

}  // namespace desync::sim::symfe
