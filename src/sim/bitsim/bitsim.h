// Compiled 64-way bit-parallel cycle simulator (the "bitsim" engine).
//
// The synchronous side of flow-equivalence checking is delay-independent
// (thesis §2.1: only the *sequence* of stored values matters), so it needs
// cycle semantics only.  This engine compiles a `liberty::BoundModule` once
// into a flat, levelized evaluation plan — structure-of-arrays op records
// over stable u32 net handles — and then evaluates 64 independent
// simulation lanes per pass: each net carries a dual-rail u64 pair (value
// word + known mask for 0/1/X semantics) and every gate is one table-driven
// `laneEvalTable` call (sim/value.h).  Lanes are used as 64 FE vector
// batches, 64 fuzz evaluations, or 64 stuck-at faults (per-lane forced
// nets) per pass.
//
// The engine is intentionally *not* a replacement for the event-driven
// `sim::Simulator`: the desynchronized/timed side keeps inertial-delay
// event simulation.  Capture sequences produced here are byte-identical to
// the event-driven reference (enforced by bitsim_test's cross-engine golden
// sweep); designs the plan compiler cannot express (transparent latches,
// combinational cycles, gated-clock trees deeper than one ICG) raise
// BitSimError and callers silently fall back to the event engine, so
// verdicts never depend on the engine choice.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "liberty/bound.h"
#include "sim/simulator.h"
#include "sim/value.h"

namespace desync::sim::bitsim {

class BitSimError : public SimError {
 public:
  using SimError::SimError;
};

constexpr std::uint32_t kNoNet = 0xffffffffu;

/// One sequential element of the plan (posedge FF or integrated clock
/// gate), with every pin resolved to a net handle at compile time.
struct BitSeq {
  std::string name;  ///< cell name (capture-log element name)
  std::uint32_t data = kNoNet;  ///< D (FF) or E (clock gate)
  std::uint32_t scan_in = kNoNet;
  std::uint32_t scan_en = kNoNet;
  std::uint32_t sync = kNoNet;
  std::uint32_t clear = kNoNet;
  std::uint32_t preset = kNoNet;
  std::uint32_t q = kNoNet;  ///< Q (FF) or gated clock Z (clock gate)
  std::uint32_t qn = kNoNet;
  bool sync_low = false, sync_set = false;
  bool clear_low = false, preset_low = false;
  bool is_icg = false;  ///< integrated clock gate (records E, gates FFs)
  /// Index of the ICG whose Z net clocks this FF; -1 = root clock.
  std::int32_t gate = -1;
};

struct PlanOptions {
  /// Root clock input port; every FF clock must resolve to this net or to
  /// the Z output of an ICG that is itself clocked by this net.
  std::string clock_port = "clk";
};

/// Flat, levelized evaluation plan.  Immutable after compile; any number
/// of BitSim evaluators may share one plan concurrently (read-only).
struct BitPlan {
  std::uint32_t n_nets = 0;
  std::uint32_t clock_net = kNoNet;
  std::uint32_t n_levels = 0;

  // Combinational ops in level order (SoA).  Op i computes
  //   net[op_out[i]] = table_eval(op_table[i],
  //                               op_inputs[op_in_off[i] .. +op_nin[i]])
  std::vector<std::uint32_t> op_out;
  std::vector<std::uint8_t> op_nin;
  std::vector<std::uint32_t> op_in_off;
  std::vector<std::uint64_t> op_table;
  std::vector<std::uint32_t> op_inputs;
  /// level_first[l] .. level_first[l+1] = the ops of level l.
  std::vector<std::uint32_t> level_first;

  /// In module cell order, so capture logs line up with the event engine.
  std::vector<BitSeq> seqs;

  std::vector<std::uint32_t> const0_nets;
  std::vector<std::uint32_t> const1_nets;
  std::unordered_map<std::string, std::uint32_t> net_index;
  double compile_ms = 0.0;

  /// Net handle by net or port name; throws BitSimError when unknown.
  [[nodiscard]] std::uint32_t netOf(std::string_view name) const;
};

/// Compiles the bound module into a plan.  Throws BitSimError on anything
/// the cycle model cannot express (unbound cells, transparent latches,
/// inverted-clock FFs, combinational cycles, clocks that do not resolve to
/// the root clock or a root-clocked ICG).
[[nodiscard]] BitPlan compilePlan(const liberty::BoundModule& bound,
                                  const PlanOptions& options = {});

/// 64-lane evaluator over one plan.  One arena allocation holds every
/// net's dual-rail pair plus the per-lane force words.
class BitSim {
 public:
  explicit BitSim(const BitPlan& plan, bool record_captures = true);

  /// Drives a port/net to `v` in every lane (inputs persist until reset).
  void set(std::string_view port, Val v);
  /// Drives a single lane of a port/net.
  void setLane(std::string_view port, unsigned lane, Val v);
  /// Per-lane stuck-at force (the fault-campaign hook): lane `lane` of the
  /// net is pinned to `v` (k0/k1 only) against every driver and input.
  void forceNet(std::string_view net, unsigned lane, Val v);

  /// Propagates to the combinational + asynchronous-control fixpoint with
  /// the clock held low (every observable point of the cycle model).
  void settle();
  /// One full clock cycle: settle, rising-edge capture (next-states are
  /// computed from the settled pre-edge values, then committed at once),
  /// settle again.  Only lanes in `active_mask` append capture records —
  /// per-lane stimulus lengths (FE batches) truncate lanes via the mask.
  void cycle(std::uint64_t active_mask = ~std::uint64_t{0});

  [[nodiscard]] Val value(std::string_view net_or_port, unsigned lane) const;
  [[nodiscard]] LaneWord word(std::string_view net_or_port) const;

  /// Extracts one lane's capture tape in event-engine format (capture-log
  /// order and stored-value sequences are byte-identical to
  /// `Simulator::captures()`; times are capture ordinals, not ps — flow
  /// equivalence compares values only).
  [[nodiscard]] std::vector<CaptureLog> captures(unsigned lane) const;

  [[nodiscard]] const BitPlan& plan() const { return *plan_; }
  [[nodiscard]] std::uint64_t cyclesRun() const { return cycles_; }

 private:
  struct Tape {
    std::vector<std::uint64_t> val;
    std::vector<std::uint64_t> known;
    std::vector<std::uint64_t> mask;  ///< lanes that recorded this entry
  };
  struct Pending {
    LaneWord next;
    std::uint64_t cap = 0;
    std::uint64_t to_x = 0;
  };

  [[nodiscard]] LaneWord read(std::uint32_t net) const {
    return LaneWord{val_[net], known_[net]};
  }
  void writeNet(std::uint32_t net, LaneWord w);
  [[nodiscard]] LaneWord nextStateWord(const BitSeq& s) const;
  [[nodiscard]] std::uint32_t netOrThrow(std::string_view name) const;

  const BitPlan* plan_;
  bool record_;
  /// One arena: [val | known | force_val | force_mask], n_nets words each.
  std::unique_ptr<std::uint64_t[]> arena_;
  std::uint64_t* val_;
  std::uint64_t* known_;
  std::uint64_t* fval_;
  std::uint64_t* fmask_;
  std::vector<LaneWord> state_;     ///< per BitSeq
  std::vector<Pending> pending_;    ///< scratch for cycle()
  std::vector<Tape> tapes_;         ///< per BitSeq
  std::uint64_t cycles_ = 0;
  /// Nets changed since the last settle(); lets cycle() skip its leading
  /// settle when nothing moved since the previous trailing one.
  bool dirty_ = true;
};

/// Process-wide engine statistics (relaxed atomics; safe under the server's
/// concurrent flows).  Deltas around a run feed the `--report` "bitsim"
/// object and the throughput bench.
struct BitsimStats {
  std::uint64_t compiles = 0;
  std::uint64_t compile_us = 0;
  std::uint64_t levels = 0;        ///< deepest plan compiled so far
  std::uint64_t cycles = 0;        ///< clock edges evaluated
  std::uint64_t lane_vectors = 0;  ///< cycles x 64 lanes
  std::uint64_t eval_us = 0;       ///< wall time inside cycle()
};
[[nodiscard]] BitsimStats bitsimStats();

namespace detail {
void addCompileStats(std::uint64_t us, std::uint32_t levels);
void addCycleStats(std::uint64_t cycles, std::uint64_t us);
}  // namespace detail

}  // namespace desync::sim::bitsim
