// Plan compiler: BoundModule -> flat levelized SoA evaluation plan.
#include <algorithm>
#include <atomic>
#include <chrono>

#include "sim/bitsim/bitsim.h"
#include "trace/trace.h"

namespace desync::sim::bitsim {

namespace {

std::atomic<std::uint64_t> g_compiles{0};
std::atomic<std::uint64_t> g_compile_us{0};
std::atomic<std::uint64_t> g_levels{0};
std::atomic<std::uint64_t> g_cycles{0};
std::atomic<std::uint64_t> g_eval_us{0};

/// Unsorted op record used during levelization.
struct RawOp {
  std::uint32_t out = kNoNet;
  std::uint8_t n_in = 0;
  std::uint64_t table = 0;
  std::uint32_t in[6] = {};
};

}  // namespace

BitsimStats bitsimStats() {
  BitsimStats s;
  s.compiles = g_compiles.load(std::memory_order_relaxed);
  s.compile_us = g_compile_us.load(std::memory_order_relaxed);
  s.levels = g_levels.load(std::memory_order_relaxed);
  s.cycles = g_cycles.load(std::memory_order_relaxed);
  s.lane_vectors = s.cycles * kLanes;
  s.eval_us = g_eval_us.load(std::memory_order_relaxed);
  return s;
}

namespace detail {

void addCompileStats(std::uint64_t us, std::uint32_t levels) {
  g_compiles.fetch_add(1, std::memory_order_relaxed);
  g_compile_us.fetch_add(us, std::memory_order_relaxed);
  std::uint64_t prev = g_levels.load(std::memory_order_relaxed);
  while (prev < levels &&
         !g_levels.compare_exchange_weak(prev, levels,
                                         std::memory_order_relaxed)) {
  }
}

void addCycleStats(std::uint64_t cycles, std::uint64_t us) {
  g_cycles.fetch_add(cycles, std::memory_order_relaxed);
  g_eval_us.fetch_add(us, std::memory_order_relaxed);
}

}  // namespace detail

std::uint32_t BitPlan::netOf(std::string_view name) const {
  auto it = net_index.find(std::string(name));
  if (it == net_index.end()) {
    throw BitSimError("bitsim: unknown net: " + std::string(name));
  }
  return it->second;
}

BitPlan compilePlan(const liberty::BoundModule& bound,
                    const PlanOptions& options) {
  trace::Span span("bitsim_compile", "sim");
  const auto t0 = std::chrono::steady_clock::now();
  const netlist::Module& module = bound.module();

  BitPlan plan;
  plan.n_nets = module.netCapacity();

  // Name lookup: nets by name, ports by name (same map the event engine
  // builds, so `set`/`value` accept the same spellings).
  module.forEachNet([&](netlist::NetId id) {
    plan.net_index.emplace(std::string(module.netName(id)), id.value);
  });
  for (const netlist::Port& p : module.ports()) {
    if (p.net.valid()) {
      plan.net_index.emplace(std::string(module.design().names().str(p.name)),
                             p.net.value);
    }
  }
  if (auto it = plan.net_index.find(options.clock_port);
      it != plan.net_index.end()) {
    plan.clock_net = it->second;
  }

  // Cells -> raw ops + sequential records (module cell order, so capture
  // logs line up with the event engine's).
  std::vector<RawOp> ops;
  module.forEachCell([&](netlist::CellId cid) {
    const liberty::BoundType* bt = bound.typeOf(cid);
    if (bt == nullptr) {
      throw BitSimError("bitsim: unknown cell type (flatten first?): " +
                        std::string(module.cellType(cid)));
    }
    auto toSlot = [](netlist::NetId n) { return n.valid() ? n.value : kNoNet; };

    if (bt->kind == liberty::CellKind::kCombinational) {
      for (const liberty::BoundOutput& o : bt->outputs) {
        RawOp g;
        g.out = toSlot(bound.pinNet(cid, o.pin));
        if (g.out == kNoNet) continue;
        g.n_in = static_cast<std::uint8_t>(o.inputs.size());
        for (std::size_t i = 0; i < o.inputs.size(); ++i) {
          g.in[i] = toSlot(bound.pinNet(cid, o.inputs[i]));
          if (g.in[i] == kNoNet) {
            throw BitSimError("bitsim: unconnected input on " +
                              std::string(module.cellName(cid)));
          }
        }
        g.table = o.table;
        ops.push_back(g);
      }
      return;
    }
    if (bt->kind == liberty::CellKind::kLatch) {
      throw BitSimError("bitsim: transparent latch " +
                        std::string(module.cellName(cid)) +
                        " needs the event engine");
    }
    const liberty::SeqClass* sc = bt->seq;
    if (sc == nullptr) {
      throw BitSimError("bitsim: unclassified sequential cell " +
                        std::string(module.cellType(cid)));
    }
    // A clock gate's enable latch is transparent-low by construction
    // ("CP'"), which is the ICG shape the cycle model implements — only
    // genuine negedge FFs are outside it.
    if (sc->clock_inverted && bt->kind != liberty::CellKind::kClockGate) {
      throw BitSimError("bitsim: negedge sequential cell " +
                        std::string(module.cellName(cid)));
    }
    const liberty::BoundSeqPins& bp = bt->seq_pins;
    auto roleNet = [&](std::int16_t lib_pin) {
      return toSlot(bound.rolePinNet(cid, lib_pin));
    };
    BitSeq s;
    s.name = std::string(module.cellName(cid));
    s.is_icg = bt->kind == liberty::CellKind::kClockGate;
    s.data = roleNet(bp.data);
    s.scan_in = roleNet(bp.scan_in);
    s.scan_en = roleNet(bp.scan_en);
    if (bp.sync >= 0) {
      s.sync = roleNet(bp.sync);
      s.sync_low = sc->sync_active_low;
      s.sync_set = sc->sync_is_set;
    }
    if (bp.clear >= 0) {
      s.clear = roleNet(bp.clear);
      s.clear_low = sc->async_clear_active_low;
    }
    if (bp.preset >= 0) {
      s.preset = roleNet(bp.preset);
      s.preset_low = sc->async_preset_active_low;
    }
    s.q = roleNet(bp.q);
    s.qn = roleNet(bp.qn);
    // Stash the clock net in `gate` temporarily; resolved below once every
    // ICG output net is known.
    const std::uint32_t clock = roleNet(bp.clock);
    s.gate = clock == kNoNet ? -1 : static_cast<std::int32_t>(clock);
    plan.seqs.push_back(std::move(s));
  });

  // Clock-tree resolution: structural, one ICG level deep (the library's
  // CGL is clocked by the root clock and gates FFs directly).
  std::unordered_map<std::uint32_t, std::int32_t> icg_of_z;
  for (std::size_t i = 0; i < plan.seqs.size(); ++i) {
    const BitSeq& s = plan.seqs[i];
    if (s.is_icg && s.q != kNoNet) {
      icg_of_z.emplace(s.q, static_cast<std::int32_t>(i));
    }
  }
  for (BitSeq& s : plan.seqs) {
    const std::int32_t raw = s.gate;
    const std::uint32_t clock =
        raw < 0 ? kNoNet : static_cast<std::uint32_t>(raw);
    if (clock == kNoNet || clock != plan.clock_net) {
      if (!s.is_icg) {
        if (auto it = icg_of_z.find(clock); it != icg_of_z.end()) {
          s.gate = it->second;
          continue;
        }
      }
      throw BitSimError("bitsim: clock of " + s.name +
                        " does not resolve to '" + options.clock_port +
                        "' or a root-clocked clock gate");
    }
    s.gate = -1;
  }

  // Levelization (Kahn over ops; deterministic: ascending op index within
  // each level).  Leftover ops mean a combinational cycle.
  std::vector<std::int32_t> producer(plan.n_nets, -1);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    producer[ops[i].out] = static_cast<std::int32_t>(i);
  }
  std::vector<std::vector<std::uint32_t>> consumers(ops.size());
  std::vector<std::uint32_t> remaining(ops.size(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::uint8_t k = 0; k < ops[i].n_in; ++k) {
      const std::int32_t p = producer[ops[i].in[k]];
      if (p >= 0) {
        consumers[static_cast<std::size_t>(p)].push_back(
            static_cast<std::uint32_t>(i));
        ++remaining[i];
      }
    }
  }
  std::vector<std::uint32_t> wave;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (remaining[i] == 0) wave.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t placed = 0;
  plan.level_first.push_back(0);
  while (!wave.empty()) {
    std::vector<std::uint32_t> next;
    for (std::uint32_t oi : wave) {
      const RawOp& g = ops[oi];
      plan.op_out.push_back(g.out);
      plan.op_nin.push_back(g.n_in);
      plan.op_in_off.push_back(static_cast<std::uint32_t>(
          plan.op_inputs.size()));
      plan.op_table.push_back(g.table);
      for (std::uint8_t k = 0; k < g.n_in; ++k) {
        plan.op_inputs.push_back(g.in[k]);
      }
      ++placed;
      for (std::uint32_t c : consumers[oi]) {
        if (--remaining[c] == 0) next.push_back(c);
      }
    }
    plan.level_first.push_back(static_cast<std::uint32_t>(plan.op_out.size()));
    std::sort(next.begin(), next.end());
    wave = std::move(next);
  }
  plan.n_levels = static_cast<std::uint32_t>(plan.level_first.size() - 1);
  if (placed != ops.size()) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (remaining[i] != 0) {
        throw BitSimError(
            "bitsim: combinational cycle through net " +
            std::string(module.netName(netlist::NetId{ops[i].out})));
      }
    }
  }

  module.forEachNet([&](netlist::NetId id) {
    const netlist::Net& n = module.net(id);
    if (n.driver.kind == netlist::TermKind::kConst0) {
      plan.const0_nets.push_back(id.value);
    } else if (n.driver.kind == netlist::TermKind::kConst1) {
      plan.const1_nets.push_back(id.value);
    }
  });

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  plan.compile_ms = static_cast<double>(us) / 1000.0;
  detail::addCompileStats(static_cast<std::uint64_t>(us), plan.n_levels);
  return plan;
}

}  // namespace desync::sim::bitsim
