// 64-lane dual-rail evaluator over a compiled BitPlan.
//
// Semantics contract: capture sequences must be byte-identical to the
// event-driven `sim::Simulator` run with settled phases (every half-period
// longer than the critical path).  The event engine samples flip-flop
// inputs at the rising clock edge with everything combinational settled and
// clk=0 still on the nets (the new clock value propagates *after* the FFs
// react), asynchronous controls are applied continuously, and an ICG's
// stored enable gates its FFs (the CGL's Z arc is faster than any FF
// clock->q, so the gated edge wins the race exactly like the structural
// gating below).  bitsim_test's cross-engine golden sweep enforces this
// contract on the whole generator design space.
#include <chrono>

#include "sim/bitsim/bitsim.h"

namespace desync::sim::bitsim {

BitSim::BitSim(const BitPlan& plan, bool record_captures)
    : plan_(&plan), record_(record_captures) {
  const std::size_t n = plan.n_nets;
  arena_ = std::make_unique<std::uint64_t[]>(4 * n);
  val_ = arena_.get();
  known_ = arena_.get() + n;
  fval_ = arena_.get() + 2 * n;
  fmask_ = arena_.get() + 3 * n;
  for (std::size_t i = 0; i < 4 * n; ++i) arena_[i] = 0;
  state_.assign(plan.seqs.size(), LaneWord{});  // all lanes X
  pending_.assign(plan.seqs.size(), Pending{});
  tapes_.assign(plan.seqs.size(), Tape{});
  settle();
}

void BitSim::writeNet(std::uint32_t net, LaneWord w) {
  const std::uint64_t fm = fmask_[net];
  val_[net] = (w.val & ~fm) | (fval_[net] & fm);
  known_[net] = w.known | fm;
}

std::uint32_t BitSim::netOrThrow(std::string_view name) const {
  return plan_->netOf(name);
}

void BitSim::set(std::string_view port, Val v) {
  writeNet(netOrThrow(port), laneBroadcast(v));
  dirty_ = true;
}

void BitSim::setLane(std::string_view port, unsigned lane, Val v) {
  const std::uint32_t n = netOrThrow(port);
  writeNet(n, laneSet(read(n), lane, v));
  dirty_ = true;
}

void BitSim::forceNet(std::string_view net, unsigned lane, Val v) {
  if (v == Val::kX) {
    throw BitSimError("bitsim: cannot force X onto " + std::string(net));
  }
  const std::uint32_t n = netOrThrow(net);
  const std::uint64_t bit = std::uint64_t{1} << lane;
  fmask_[n] |= bit;
  if (v == Val::k1) {
    fval_[n] |= bit;
  } else {
    fval_[n] &= ~bit;
  }
  writeNet(n, read(n));
  dirty_ = true;
}

Val BitSim::value(std::string_view net_or_port, unsigned lane) const {
  return laneGet(read(netOrThrow(net_or_port)), lane);
}

LaneWord BitSim::word(std::string_view net_or_port) const {
  return read(netOrThrow(net_or_port));
}

void BitSim::settle() {
  if (!dirty_) return;  // nothing changed since the last fixpoint
  const BitPlan& p = *plan_;
  for (std::uint32_t n : p.const0_nets) writeNet(n, laneBroadcast(Val::k0));
  for (std::uint32_t n : p.const1_nets) writeNet(n, laneBroadcast(Val::k1));
  // Every observable point of the cycle model has the clock low (the event
  // engine's captures happen before the new clock level reaches any net).
  if (p.clock_net != kNoNet) writeNet(p.clock_net, laneBroadcast(Val::k0));

  // Fixpoint over {sequential outputs -> levelized comb -> asynchronous
  // controls}.  Async forces can ripple through FF chains (a cleared FF's
  // Q reaches another FF's CDN), so iterate; the chain length bounds the
  // iteration count and anything past it is oscillation.
  const std::size_t max_iters = p.seqs.size() + 4;
  for (std::size_t iter = 0;; ++iter) {
    if (iter >= max_iters) {
      throw BitSimError("bitsim: asynchronous controls did not settle");
    }
    // Sequential outputs from the stored state.  A clock gate's Z is
    // E AND CP, i.e. constant 0 while the clock is low.
    for (std::size_t i = 0; i < p.seqs.size(); ++i) {
      const BitSeq& s = p.seqs[i];
      if (s.is_icg) {
        if (s.q != kNoNet) writeNet(s.q, laneBroadcast(Val::k0));
        continue;
      }
      if (s.q != kNoNet) writeNet(s.q, state_[i]);
      if (s.qn != kNoNet) writeNet(s.qn, laneInvert(state_[i]));
    }
    // One levelized sweep evaluates every op exactly once in dependency
    // order (the plan is acyclic).
    const std::size_t n_ops = p.op_out.size();
    for (std::size_t o = 0; o < n_ops; ++o) {
      LaneWord in[6];
      const std::uint32_t off = p.op_in_off[o];
      const std::uint8_t nin = p.op_nin[o];
      for (std::uint8_t k = 0; k < nin; ++k) {
        in[k] = read(p.op_inputs[off + k]);
      }
      writeNet(p.op_out[o], laneEvalTable(p.op_table[o], in, nin));
    }
    // Asynchronous overrides + transparent ICG enable resample.
    bool changed = false;
    for (std::size_t i = 0; i < p.seqs.size(); ++i) {
      const BitSeq& s = p.seqs[i];
      if (s.is_icg) {
        // Enable latch transparent while the clock is low; its state does
        // not reach any net until the edge, so no re-iteration needed.
        state_[i] = s.data == kNoNet ? LaneWord{} : read(s.data);
        continue;
      }
      if (s.clear == kNoNet && s.preset == kNoNet) continue;
      const LaneWord clr = s.clear == kNoNet
                               ? laneBroadcast(Val::k0)
                               : laneActiveLevel(read(s.clear), s.clear_low);
      const LaneWord pre = s.preset == kNoNet
                               ? laneBroadcast(Val::k0)
                               : laneActiveLevel(read(s.preset), s.preset_low);
      // Mirrors the event engine's branch order exactly: an active clear
      // or preset dominates (clear wins over a merely-possible preset and
      // vice versa; both active -> X), otherwise any X control forces X.
      const std::uint64_t branch1 = clr.val | pre.val;
      const std::uint64_t forced0 = clr.val & ~pre.val;
      const std::uint64_t forced1 = pre.val & ~clr.val;
      const std::uint64_t branch_x =
          ~branch1 & (~clr.known | ~pre.known);
      const std::uint64_t off_mask = ~(branch1 | branch_x);
      LaneWord ns;
      ns.val = (state_[i].val & off_mask) | forced1;
      ns.known = (state_[i].known & off_mask) | forced0 | forced1;
      if (!(ns == state_[i])) {
        state_[i] = ns;
        changed = true;
      }
    }
    if (!changed) {
      dirty_ = false;
      return;
    }
  }
}

LaneWord BitSim::nextStateWord(const BitSeq& s) const {
  LaneWord d = s.data == kNoNet ? LaneWord{} : read(s.data);
  if (s.scan_en != kNoNet) {
    const LaneWord se = read(s.scan_en);
    const LaneWord si = s.scan_in == kNoNet ? LaneWord{} : read(s.scan_in);
    const std::uint64_t s1 = se.val;
    const std::uint64_t s0 = se.known & ~se.val;
    const std::uint64_t sx = ~se.known;
    const LaneWord m = laneMerge(si, d);  // se=X keeps only agreeing lanes
    d.val = (s1 & si.val) | (s0 & d.val) | (sx & m.val);
    d.known = (s1 & si.known) | (s0 & d.known) | (sx & m.known);
  }
  if (s.sync != kNoNet) {
    const LaneWord a = laneActiveLevel(read(s.sync), s.sync_low);
    const LaneWord f = laneBroadcast(s.sync_set ? Val::k1 : Val::k0);
    const std::uint64_t a1 = a.val;
    const std::uint64_t a0 = a.known & ~a.val;
    const std::uint64_t ax = ~a.known;
    const LaneWord m = laneMerge(d, f);  // control=X keeps d only if == f
    d.val = (a1 & f.val) | (a0 & d.val) | (ax & m.val);
    d.known = (a1 & f.known) | (a0 & d.known) | (ax & m.known);
  }
  return d;
}

void BitSim::cycle(std::uint64_t active_mask) {
  const auto t0 = std::chrono::steady_clock::now();
  const BitPlan& p = *plan_;
  if (dirty_) settle();

  // Phase 1: every next-state and capture mask from the settled pre-edge
  // values (no commit yet — FF->FF paths must see old Q values, exactly as
  // the event engine's clock->q delay guarantees).
  for (std::size_t i = 0; i < p.seqs.size(); ++i) {
    const BitSeq& s = p.seqs[i];
    Pending& pd = pending_[i];
    if (s.is_icg) {
      // The event engine records the stored enable at every rising edge.
      pd.next = state_[i];
      pd.cap = active_mask;
      pd.to_x = 0;
      continue;
    }
    // Lanes owned by an active/unknown asynchronous control never capture
    // (the settle loop already forced their state).
    std::uint64_t async1 = 0, async_x = 0;
    if (s.clear != kNoNet || s.preset != kNoNet) {
      const LaneWord clr = s.clear == kNoNet
                               ? laneBroadcast(Val::k0)
                               : laneActiveLevel(read(s.clear), s.clear_low);
      const LaneWord pre = s.preset == kNoNet
                               ? laneBroadcast(Val::k0)
                               : laneActiveLevel(read(s.preset), s.preset_low);
      async1 = clr.val | pre.val;
      async_x = ~async1 & (~clr.known | ~pre.known);
    }
    // Structural clock gating: the ICG's stored enable decides which lanes
    // see an edge.  A per-lane force on the gated-clock net kills the edge
    // in that lane outright (a stuck gclk never rises), which the
    // structural model must replicate explicitly.
    std::uint64_t gate1 = ~std::uint64_t{0}, gate_x = 0;
    if (s.gate >= 0) {
      const std::size_t gi = static_cast<std::size_t>(s.gate);
      const LaneWord e = state_[gi];
      gate1 = e.val;
      gate_x = ~e.known;
      const std::uint32_t z = p.seqs[gi].q;
      if (z != kNoNet) {
        gate1 &= ~fmask_[z];
        gate_x &= ~fmask_[z];
      }
    }
    const std::uint64_t live = ~async1 & ~async_x;
    pd.cap = live & gate1;
    pd.to_x = live & gate_x;
    pd.next = nextStateWord(s);
  }

  // Phase 2: commit + record.
  for (std::size_t i = 0; i < p.seqs.size(); ++i) {
    const BitSeq& s = p.seqs[i];
    Pending& pd = pending_[i];
    if (!s.is_icg) {
      const std::uint64_t keep = ~(pd.cap | pd.to_x);
      state_[i].val = (state_[i].val & keep) | (pd.next.val & pd.cap);
      state_[i].known = (state_[i].known & keep) | (pd.next.known & pd.cap);
    }
    if (record_) {
      const std::uint64_t rec = pd.cap & active_mask;
      Tape& t = tapes_[i];
      t.val.push_back(pd.next.val & rec);
      t.known.push_back(pd.next.known & rec);
      t.mask.push_back(rec);
    }
  }

  dirty_ = true;  // committed states changed the q nets
  settle();
  ++cycles_;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  detail::addCycleStats(1, static_cast<std::uint64_t>(us));
}

std::vector<CaptureLog> BitSim::captures(unsigned lane) const {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  std::vector<CaptureLog> out;
  out.reserve(plan_->seqs.size());
  for (std::size_t i = 0; i < plan_->seqs.size(); ++i) {
    CaptureLog log;
    log.element = plan_->seqs[i].name;
    const Tape& t = tapes_[i];
    for (std::size_t k = 0; k < t.mask.size(); ++k) {
      if (!(t.mask[k] & bit)) continue;
      log.values.push_back(
          laneGet(LaneWord{t.val[k], t.known[k]}, lane));
      log.times.push_back(static_cast<Time>(k));
    }
    out.push_back(std::move(log));
  }
  return out;
}

}  // namespace desync::sim::bitsim
