#include "sim/flow_equivalence.h"

#include <algorithm>

#include "core/parallel.h"
#include "trace/trace.h"

namespace desync::sim {

FlowEqReport checkFlowEquivalence(const Simulator& sync_sim,
                                  const Simulator& desync_sim,
                                  const FlowEqOptions& options) {
  return checkFlowEquivalence(sync_sim.captures(), desync_sim, options);
}

FlowEqReport checkFlowEquivalence(const std::vector<CaptureLog>& sync_logs,
                                  const Simulator& desync_sim,
                                  const FlowEqOptions& options) {
  FlowEqReport report;
  auto mapName = options.map_name
                     ? options.map_name
                     : [](const std::string& n) { return n + "_Ls"; };

  for (const CaptureLog& sync_log : sync_logs) {
    const CaptureLog* desync_log = desync_sim.captureOf(mapName(sync_log.element));
    if (desync_log == nullptr) {
      ++report.skipped;
      continue;
    }
    // Strip leading X captures on both sides (pre-reset garbage).
    auto firstKnown = [&](const std::vector<Val>& v) {
      std::size_t i = 0;
      if (options.skip_leading_x) {
        while (i < v.size() && v[i] == Val::kX) ++i;
      }
      return i;
    };
    std::size_t si = firstKnown(sync_log.values);
    const std::size_t di0 = firstKnown(desync_log->values);
    if (std::min(sync_log.values.size() - si,
                 desync_log->values.size() - di0) < options.min_common) {
      ++report.skipped;
      continue;
    }
    ++report.elements_compared;

    // Try alignments: the desync side may lead with reset-epoch captures.
    auto mismatchesAt = [&](std::size_t di, std::size_t* compared) {
      const std::size_t common = std::min(sync_log.values.size() - si,
                                          desync_log->values.size() - di);
      std::size_t bad = 0;
      for (std::size_t k = 0; k < common; ++k) {
        if (sync_log.values[si + k] != desync_log->values[di + k]) ++bad;
      }
      *compared = common;
      return bad;
    };
    std::size_t best_di = di0, best_bad = ~std::size_t{0}, best_common = 0;
    for (std::size_t skip = 0; skip <= options.max_initial_skip; ++skip) {
      const std::size_t di = di0 + skip;
      if (di >= desync_log->values.size()) break;
      std::size_t common = 0;
      std::size_t bad = mismatchesAt(di, &common);
      if (common < options.min_common) break;
      if (bad < best_bad) {
        best_bad = bad;
        best_di = di;
        best_common = common;
      }
      if (bad == 0) break;
    }

    report.values_compared += best_common;
    if (best_bad != 0) {
      report.mismatches += best_bad;
      report.equivalent = false;
      const std::size_t common = best_common;
      for (std::size_t k = 0; k < common; ++k) {
        Val a = sync_log.values[si + k];
        Val b = desync_log->values[best_di + k];
        if (a != b && report.details.size() < options.max_details) {
          report.details.push_back(
              sync_log.element + " capture #" + std::to_string(k) +
              ": sync=" + toChar(a) + " desync=" + toChar(b));
        }
      }
    }
  }
  if (report.elements_compared == 0) {
    report.equivalent = false;
    report.details.push_back("no comparable sequential elements");
  }
  return report;
}

namespace {

/// Index-order reduction of per-batch reports (deterministic regardless of
/// the schedule that produced them).
FlowEqBatchReport mergeBatches(std::vector<FlowEqReport> per_batch) {
  FlowEqBatchReport merged;
  merged.batches_run = per_batch.size();
  for (const FlowEqReport& r : per_batch) {
    merged.equivalent = merged.equivalent && r.equivalent;
    merged.elements_compared += r.elements_compared;
    merged.values_compared += r.values_compared;
    merged.mismatches += r.mismatches;
  }
  merged.per_batch = std::move(per_batch);
  return merged;
}

}  // namespace

FlowEqBatchReport checkFlowEquivalenceBatches(std::size_t n_batches,
                                              const SimFactory& run_sync,
                                              const SimFactory& run_desync,
                                              const FlowEqOptions& options) {
  return mergeBatches(core::parallelMap(n_batches, [&](std::size_t b) {
    trace::Span span("fe_batch", "sim");
    const std::unique_ptr<Simulator> sync_sim = run_sync(b);
    const std::unique_ptr<Simulator> desync_sim = run_desync(b);
    return checkFlowEquivalence(*sync_sim, *desync_sim, options);
  }));
}

FlowEqBatchReport checkFlowEquivalenceBatches(const Simulator& golden_sync,
                                              std::size_t n_batches,
                                              const SimFactory& run_desync,
                                              const FlowEqOptions& options) {
  return mergeBatches(core::parallelMap(n_batches, [&](std::size_t b) {
    trace::Span span("fe_batch", "sim");
    const std::unique_ptr<Simulator> desync_sim = run_desync(b);
    return checkFlowEquivalence(golden_sync, *desync_sim, options);
  }));
}

FlowEqBatchReport checkFlowEquivalenceBatches(
    const std::vector<std::vector<CaptureLog>>& sync_batches,
    const SimFactory& run_desync, const FlowEqOptions& options) {
  return mergeBatches(
      core::parallelMap(sync_batches.size(), [&](std::size_t b) {
        trace::Span span("fe_batch", "sim");
        const std::unique_ptr<Simulator> desync_sim = run_desync(b);
        return checkFlowEquivalence(sync_batches[b], *desync_sim, options);
      }));
}

}  // namespace desync::sim
