#include "netlist/names.h"

#include <cassert>

namespace desync::netlist {

NameId NameTable::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) {
    return it->second;
  }
  strings_.emplace_back(s);
  NameId id{static_cast<std::uint32_t>(strings_.size() - 1)};
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

NameId NameTable::find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? NameId{} : it->second;
}

std::string_view NameTable::str(NameId id) const {
  assert(id.valid() && id.index() < strings_.size());
  return strings_[id.index()];
}

NameId NameTable::makeUnique(std::string_view base) {
  if (!find(base).valid()) {
    return intern(base);
  }
  for (int suffix = 1;; ++suffix) {
    std::string candidate = std::string(base) + "_" + std::to_string(suffix);
    if (!find(candidate).valid()) {
      return intern(candidate);
    }
  }
}

}  // namespace desync::netlist
