#include "netlist/flatten.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace desync::netlist {
namespace {

/// Expands one instance `inst` (of module `sub`) inside `top`.
void expandInstance(Module& top, CellId inst, const Module& sub) {
  const Design& design = top.design();
  const NameTable& names = design.names();
  std::string prefix = std::string(top.cellName(inst)) + "/";

  // Map each formal port name of `sub` to the outer net bound on the
  // instance pin.
  std::unordered_map<NameId, NetId> port_to_outer;
  {
    const Cell& c = top.cell(inst);
    for (const PinConn& pin : c.pins) {
      if (pin.net.valid()) port_to_outer.emplace(pin.name, pin.net);
    }
  }
  // Remove the instance up front so its output pins stop driving the outer
  // nets the copied inner drivers will take over.
  top.removeCell(inst);

  // Create inner nets in the outer module.  Port-connected inner nets map to
  // the outer nets instead.
  std::unordered_map<std::uint32_t, NetId> net_map;  // sub NetId -> top NetId
  sub.forEachNet([&](NetId nid) {
    const Net& n = sub.net(nid);
    // A net is "the port's net" when some port of `sub` references it.  A
    // single inner net bound through several ports to *different* outer
    // nets cannot be expressed after flattening.
    NetId outer;
    for (const Port& p : sub.ports()) {
      if (!(p.net == nid)) continue;
      auto it = port_to_outer.find(p.name);
      if (it == port_to_outer.end()) continue;
      if (outer.valid() && !(outer == it->second)) {
        throw NetlistError("flatten: inner net of " + std::string(sub.name()) +
                           " bound to multiple distinct outer nets");
      }
      outer = it->second;
    }
    if (!outer.valid()) {
      if (n.driver.isConst()) {
        outer = top.constNet(n.driver.kind == TermKind::kConst1);
      } else {
        std::string name = prefix + std::string(names.str(n.name));
        outer = top.addNet(name);
        top.net(outer).false_path = n.false_path;
      }
    }
    net_map.emplace(nid.value, outer);
  });

  // Copy cells.
  sub.forEachCell([&](CellId cid) {
    const Cell& c = sub.cell(cid);
    std::vector<Module::PinInit> pins;
    pins.reserve(c.pins.size());
    for (const PinConn& pin : c.pins) {
      NetId mapped;
      if (pin.net.valid()) mapped = net_map.at(pin.net.value);
      pins.push_back(Module::PinInit{std::string(names.str(pin.name)),
                                     pin.dir, mapped});
    }
    CellId new_id = top.addCell(prefix + std::string(names.str(c.name)),
                                names.str(c.type), pins);
    top.cell(new_id).size_only = c.size_only;
    top.cell(new_id).dont_touch = c.dont_touch;
  });
}

}  // namespace

Module& cloneModule(Design& dst, const Module& src) {
  const NameTable& names = src.design().names();
  if (Module* existing = dst.findModule(src.name())) return *existing;

  // Clone dependencies first so instance pin directions resolve naturally.
  src.forEachCell([&](CellId id) {
    if (const Module* sub = src.design().findModule(src.cellType(id))) {
      if (sub != &src) cloneModule(dst, *sub);
    }
  });

  Module& out = dst.addModule(src.name());
  std::unordered_map<std::uint32_t, NetId> net_map;
  src.forEachNet([&](NetId nid) {
    const Net& n = src.net(nid);
    NetId copy;
    if (n.driver.isConst()) {
      copy = out.constNet(n.driver.kind == TermKind::kConst1);
    } else if (n.bus.valid()) {
      copy = out.addNet(names.str(n.name), names.str(n.bus.bus), n.bus.bit);
    } else {
      copy = out.addNet(names.str(n.name));
    }
    out.net(copy).false_path = n.false_path;
    net_map.emplace(nid.value, copy);
  });
  for (const Port& p : src.ports()) {
    NetId net;
    if (p.net.valid()) net = net_map.at(p.net.value);
    if (p.bus.valid()) {
      out.addPort(names.str(p.name), p.dir, net, names.str(p.bus.bus),
                  p.bus.bit);
    } else {
      out.addPort(names.str(p.name), p.dir, net);
    }
  }
  src.forEachCell([&](CellId cid) {
    const Cell& c = src.cell(cid);
    std::vector<Module::PinInit> pins;
    pins.reserve(c.pins.size());
    for (const PinConn& pin : c.pins) {
      NetId mapped;
      if (pin.net.valid()) mapped = net_map.at(pin.net.value);
      pins.push_back(
          Module::PinInit{std::string(names.str(pin.name)), pin.dir, mapped});
    }
    CellId new_id =
        out.addCell(names.str(c.name), names.str(c.type), pins);
    out.cell(new_id).size_only = c.size_only;
    out.cell(new_id).dont_touch = c.dont_touch;
  });
  return out;
}

Module& snapshotModule(Design& dst, Module& src) {
  bool has_instances = false;
  if (src.design().numModules() > 1) {
    std::unordered_set<std::uint32_t> module_names;
    src.design().forEachModule([&](const Module& sub) {
      if (&sub != &src) module_names.insert(sub.nameId().value);
    });
    src.forEachCell([&](CellId id) {
      has_instances =
          has_instances || module_names.count(src.cell(id).type.value) != 0;
    });
  }
  if (dst.numModules() != 0 || dst.names().size() != 0 || has_instances) {
    return cloneModule(dst, src);
  }
  // Sharing the append-only table keeps every NameId valid in `dst`, so
  // the raw arrays (which reference names by id) are adopted unchanged.
  dst.shareNames(src.design());
  Module& out = dst.addModule(src.name());
  Module::RawState state;
  state.nets = src.rawNets();
  state.cells = src.rawCells();
  state.ports = src.ports();
  state.const_nets[0] = src.constNetRaw(false);
  state.const_nets[1] = src.constNetRaw(true);
  out.restoreRawState(std::move(state));
  return out;
}

FlattenStats flatten(Module& module) {
  FlattenStats stats;
  Design& design = module.design();
  bool changed = true;
  while (changed) {
    changed = false;
    for (CellId id : module.cellIds()) {
      const Module* sub = design.findModule(module.cellType(id));
      if (sub == nullptr || sub == &module) continue;
      expandInstance(module, id, *sub);
      ++stats.instances_flattened;
      changed = true;
    }
  }
  return stats;
}

FlattenStats flattenTop(Design& design) { return flatten(design.top()); }

}  // namespace desync::netlist
