// Structural BLIF export (thesis §3.2.7: drdesync also exports BLIF for the
// SIS tool).  Cells are emitted as .subckt references; the consumer binds
// them against a genlib/library description.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace desync::netlist {

/// Serializes `module` as a structural BLIF .model.
std::string writeBlif(const Module& module);

/// Writes the top module of `design` to `path` as BLIF.
void writeBlifFile(const Design& design, const std::string& path);

}  // namespace desync::netlist
