// Hierarchy flattening.
//
// drdesync operates on flat gate-level netlists; composite cells (extra
// latches built from standard cells, latch controllers, C-Muller modules)
// are authored as Modules and dissolved into the top module with
// slash-separated prefix names, exactly like an industrial flattening step.
#pragma once

#include "netlist/netlist.h"

namespace desync::netlist {

struct FlattenStats {
  std::size_t instances_flattened = 0;
};

/// Recursively replaces every instance of a Module of the same Design inside
/// `module` with the instantiated module's contents.  Inner object names are
/// prefixed with "<instance>/".  Instances of unknown (library) types are
/// left untouched.
FlattenStats flatten(Module& module);

/// Flattens the design's top module.
FlattenStats flattenTop(Design& design);

/// Deep-copies `src` (and, recursively, every module of src's design it
/// instantiates) into `dst`.  Returns the copy.  No-op if a module with the
/// same name already exists in `dst`.
Module& cloneModule(Design& dst, const Module& src);

/// Fast single-module snapshot into an *empty* design: `dst` shares src's
/// (append-only) NameTable, so every NameId stays valid and the raw slot
/// arrays — tombstones included — are adopted as plain copies, with no
/// re-interning.  Ids are preserved exactly.  `src` is not modified, but
/// its design's table outlives and backs `dst`, hence the non-const
/// reference.  Falls back to cloneModule() when `dst` is not empty or
/// `src` instantiates other modules (the snapshot would not contain them).
Module& snapshotModule(Design& dst, Module& src);

}  // namespace desync::netlist
