// Interface through which the netlist layer learns about library cell types.
//
// The netlist database itself is library-agnostic: a cell instance stores its
// type name only.  Passes that need pin directions or port order (e.g. the
// Verilog parser) receive a CellTypeProvider; the Liberty gatefile implements
// it for library cells, and the parser layers a Design's own modules on top.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.h"

namespace desync::netlist {

/// Resolves cell type names to pin metadata.
class CellTypeProvider {
 public:
  virtual ~CellTypeProvider() = default;

  /// True when `type` is a known cell type.
  [[nodiscard]] virtual bool knownType(std::string_view type) const = 0;

  /// Direction of pin `pin` on cell type `type`; nullopt when unknown.
  [[nodiscard]] virtual std::optional<PortDir> pinDir(
      std::string_view type, std::string_view pin) const = 0;

  /// Declaration-order pin names of `type` (used for positional connections).
  /// May return empty when the provider does not track order.
  [[nodiscard]] virtual std::vector<std::string> pinOrder(
      std::string_view type) const = 0;
};

/// Provider that knows nothing; connections must then resolve against the
/// design's own modules.
class EmptyCellTypeProvider final : public CellTypeProvider {
 public:
  [[nodiscard]] bool knownType(std::string_view) const override {
    return false;
  }
  [[nodiscard]] std::optional<PortDir> pinDir(std::string_view,
                                              std::string_view) const override {
    return std::nullopt;
  }
  [[nodiscard]] std::vector<std::string> pinOrder(
      std::string_view) const override {
    return {};
  }
};

}  // namespace desync::netlist
