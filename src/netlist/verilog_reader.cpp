#include <cctype>
#include <charconv>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <variant>

#include "netlist/verilog.h"

namespace desync::netlist {
namespace {

// ------------------------------------------------------------------ Lexer

enum class TokKind {
  kEof,
  kIdent,    // plain or escaped identifier (text holds the raw name)
  kNumber,   // sized or unsized constant (text holds full literal)
  kPunct,    // single-char punctuation, kind in `punct`
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  char punct = 0;
  int line = 0;
  bool escaped = false;  // identifier came from a \escaped form
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  const Token& peek() {
    if (!have_) {
      cur_ = lex();
      have_ = true;
    }
    return cur_;
  }

  Token next() {
    const Token& t = peek();
    have_ = false;
    return t;
  }

  [[nodiscard]] int line() const { return line_; }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw VerilogError("verilog:" + std::to_string(line_) + ": " + msg);
  }

  void skipSpaceAndComments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= src_.size()) fail("unterminated block comment");
        pos_ += 2;
        continue;
      }
      // Compiler directives (`timescale etc.): skip to end of line.
      if (pos_ < src_.size() && src_[pos_] == '`') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  Token lex() {
    skipSpaceAndComments();
    Token t;
    t.line = line_;
    if (pos_ >= src_.size()) return t;
    char c = src_[pos_];
    if (c == '\\') {
      // Escaped identifier: up to next whitespace, backslash dropped.
      ++pos_;
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             !std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      t.kind = TokKind::kIdent;
      t.text = std::string(src_.substr(start, pos_ - start));
      t.escaped = true;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_' || src_[pos_] == '$')) {
        ++pos_;
      }
      t.kind = TokKind::kIdent;
      t.text = std::string(src_.substr(start, pos_ - start));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
      // Number: [size]'[base]digits or plain decimal.
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '\'') {
        ++pos_;
        if (pos_ < src_.size()) ++pos_;  // base char
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_' || src_[pos_] == 'x' || src_[pos_] == 'z')) {
          ++pos_;
        }
      }
      t.kind = TokKind::kNumber;
      t.text = std::string(src_.substr(start, pos_ - start));
      return t;
    }
    static constexpr std::string_view kPunct = "()[]{},;:.=#*";
    if (kPunct.find(c) != std::string_view::npos) {
      ++pos_;
      t.kind = TokKind::kPunct;
      t.punct = c;
      return t;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token cur_;
  bool have_ = false;
};

// --------------------------------------------------------------- Parser

/// One bit of an elaborated expression: a net or a constant.
struct BitRef {
  NetId net;          // valid -> net bit
  bool const_val = false;  // used when net invalid
};

struct BusDecl {
  std::int32_t msb = 0;
  std::int32_t lsb = 0;
};

class Parser {
 public:
  Parser(Design& design, std::string_view src, const CellTypeProvider& types,
         const VerilogReadOptions& options)
      : design_(design), lex_(src), types_(types), options_(options) {}

  void parseFile() {
    while (lex_.peek().kind != TokKind::kEof) {
      expectIdent("module");
      parseModule();
    }
  }

  [[nodiscard]] std::string_view lastModule() const { return last_module_; }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw VerilogError("verilog:" + std::to_string(lex_.line()) + ": " + msg);
  }

  Token expect(TokKind kind, const char* what) {
    Token t = lex_.next();
    if (t.kind != kind) fail(std::string("expected ") + what);
    return t;
  }

  Token expectPunct(char p) {
    Token t = lex_.next();
    if (t.kind != TokKind::kPunct || t.punct != p) {
      fail(std::string("expected '") + p + "'");
    }
    return t;
  }

  void expectIdent(std::string_view kw) {
    Token t = lex_.next();
    if (t.kind != TokKind::kIdent || t.text != kw) {
      fail("expected keyword '" + std::string(kw) + "'");
    }
  }

  bool peekPunct(char p) {
    const Token& t = lex_.peek();
    return t.kind == TokKind::kPunct && t.punct == p;
  }

  bool peekIdent(std::string_view kw) {
    const Token& t = lex_.peek();
    return t.kind == TokKind::kIdent && t.text == kw;
  }

  /// Maps possibly-escaped identifiers to the module-local simple name.
  std::string canonName(const Token& t) {
    if (!t.escaped || !options_.simplify_escaped_names) return t.text;
    auto it = escaped_map_.find(t.text);
    if (it != escaped_map_.end()) return it->second;
    std::string simple;
    simple.reserve(t.text.size() + 4);
    for (char c : t.text) {
      simple.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0
                           ? c
                           : '_');
    }
    if (simple.empty() ||
        std::isdigit(static_cast<unsigned char>(simple.front()))) {
      simple.insert(simple.begin(), 'n');
    }
    // Ensure the substitution does not collide with an existing name.
    simple =
        std::string(design_.names().str(design_.names().makeUnique(simple)));
    escaped_map_.emplace(t.text, simple);
    return simple;
  }

  // --- range / declarations ------------------------------------------

  std::optional<BusDecl> parseOptionalRange() {
    if (!peekPunct('[')) return std::nullopt;
    lex_.next();
    BusDecl d;
    d.msb = parseInt();
    expectPunct(':');
    d.lsb = parseInt();
    expectPunct(']');
    return d;
  }

  std::int32_t parseInt() {
    Token t = expect(TokKind::kNumber, "integer");
    std::int32_t v = 0;
    auto [p, ec] = std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
    if (ec != std::errc() || p != t.text.data() + t.text.size()) {
      fail("bad integer '" + t.text + "'");
    }
    return v;
  }

  /// Returns/creates the scalar net for bit `bit` of `base` (or the scalar
  /// net `base` itself when scalar).
  NetId netForBit(const std::string& base, std::optional<std::int32_t> bit) {
    std::string name = base;
    if (bit) name += "[" + std::to_string(*bit) + "]";
    NetId id = module_->findNet(name);
    if (id.valid()) return id;
    if (bit) return module_->addNet(name, base, *bit);
    return module_->addNet(name);
  }

  void declareNets(const std::string& base, std::optional<BusDecl> range) {
    if (!range) {
      if (!module_->findNet(base).valid()) module_->addNet(base);
      buses_.erase(base);
      return;
    }
    buses_[base] = *range;
    const std::int32_t step = range->msb >= range->lsb ? -1 : 1;
    for (std::int32_t b = range->msb;; b += step) {
      std::string name = base + "[" + std::to_string(b) + "]";
      if (!module_->findNet(name).valid()) module_->addNet(name, base, b);
      if (b == range->lsb) break;
    }
  }

  void declarePorts(const std::string& base, std::optional<BusDecl> range,
                    PortDir dir) {
    declareNets(base, range);
    if (!range) {
      if (!module_->findPort(base).valid()) {
        module_->addPort(base, dir, module_->findNet(base));
      }
      return;
    }
    const std::int32_t step = range->msb >= range->lsb ? -1 : 1;
    for (std::int32_t b = range->msb;; b += step) {
      std::string name = base + "[" + std::to_string(b) + "]";
      if (!module_->findPort(name).valid()) {
        module_->addPort(name, dir, module_->findNet(name), base, b);
      }
      if (b == range->lsb) break;
    }
  }

  // --- expressions -----------------------------------------------------

  /// Elaborates an expression to a MSB-first vector of bits.
  std::vector<BitRef> parseExpr() {
    if (peekPunct('{')) {
      lex_.next();
      std::vector<BitRef> bits;
      for (;;) {
        auto part = parseExpr();
        bits.insert(bits.end(), part.begin(), part.end());
        if (peekPunct(',')) {
          lex_.next();
          continue;
        }
        expectPunct('}');
        break;
      }
      return bits;
    }
    const Token& p = lex_.peek();
    if (p.kind == TokKind::kNumber) {
      Token t = lex_.next();
      return constBits(t.text);
    }
    if (p.kind == TokKind::kIdent) {
      Token t = lex_.next();
      std::string base = canonName(t);
      if (peekPunct('[')) {
        lex_.next();
        std::int32_t hi = parseInt();
        std::int32_t lo = hi;
        if (peekPunct(':')) {
          lex_.next();
          lo = parseInt();
        }
        expectPunct(']');
        std::vector<BitRef> bits;
        const std::int32_t step = hi >= lo ? -1 : 1;
        for (std::int32_t b = hi;; b += step) {
          bits.push_back(BitRef{netForBit(base, b), false});
          if (b == lo) break;
        }
        return bits;
      }
      auto bus = buses_.find(base);
      if (bus != buses_.end()) {
        std::vector<BitRef> bits;
        const BusDecl& d = bus->second;
        const std::int32_t step = d.msb >= d.lsb ? -1 : 1;
        for (std::int32_t b = d.msb;; b += step) {
          bits.push_back(BitRef{netForBit(base, b), false});
          if (b == d.lsb) break;
        }
        return bits;
      }
      return {BitRef{netForBit(base, std::nullopt), false}};
    }
    fail("expected expression");
  }

  std::vector<BitRef> constBits(const std::string& literal) {
    // Parse [size]'[base]digits; unsized plain decimal treated as 32-bit
    // truncated to the needed width by the caller via width matching.
    // Gate-level netlists carry only small control constants, so the value
    // must fit 64 bits; widths are capped to keep a typo like 1000000'b0
    // from allocating a million nets.
    constexpr int kMaxWidth = 4096;
    std::size_t tick = literal.find('\'');
    std::uint64_t value = 0;
    int width = 32;
    if (tick == std::string::npos) {
      const auto [p, ec] = std::from_chars(
          literal.data(), literal.data() + literal.size(), value);
      if (ec != std::errc() || p != literal.data() + literal.size()) {
        fail("bad constant '" + literal + "'");
      }
    } else {
      if (tick > 0) {
        const auto [p, ec] =
            std::from_chars(literal.data(), literal.data() + tick, width);
        if (ec != std::errc() || p != literal.data() + tick || width <= 0) {
          fail("bad constant width in '" + literal + "'");
        }
        if (width > kMaxWidth) {
          fail("constant width " + std::to_string(width) + " exceeds " +
               std::to_string(kMaxWidth) + " in '" + literal + "'");
        }
      }
      if (tick + 1 >= literal.size()) {
        fail("missing base in constant '" + literal + "'");
      }
      char base = static_cast<char>(
          std::tolower(static_cast<unsigned char>(literal[tick + 1])));
      if (base != 'b' && base != 'o' && base != 'd' && base != 'h') {
        fail(std::string("bad constant base '") + literal[tick + 1] +
             "' in '" + literal + "'");
      }
      std::string digits = literal.substr(tick + 2);
      digits.erase(std::remove(digits.begin(), digits.end(), '_'),
                   digits.end());
      if (digits.empty()) {
        fail("missing digits in constant '" + literal + "'");
      }
      int radix = base == 'b' ? 2 : base == 'o' ? 8 : base == 'd' ? 10 : 16;
      for (char c : digits) {
        int d = 0;
        if (c >= '0' && c <= '9') {
          d = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          d = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          d = c - 'A' + 10;
        } else if (c == 'x' || c == 'z' || c == 'X' || c == 'Z') {
          d = 0;  // x/z treated as 0 for gate-level constants
        } else {
          fail("bad constant digit in '" + literal + "'");
        }
        if (d >= radix) {
          fail(std::string("digit '") + c + "' out of range for base '" +
               base + "' in '" + literal + "'");
        }
        const std::uint64_t next =
            value * static_cast<std::uint64_t>(radix) +
            static_cast<std::uint64_t>(d);
        if (value > (std::numeric_limits<std::uint64_t>::max() -
                     static_cast<std::uint64_t>(d)) /
                        static_cast<std::uint64_t>(radix)) {
          fail("constant value overflows 64 bits in '" + literal + "'");
        }
        value = next;
      }
    }
    std::vector<BitRef> bits(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      // Bits beyond the 64-bit value (wide zero-padded constants) are 0;
      // width - 1 - i >= 64 would be UB on the shift.
      const int pos = width - 1 - i;
      BitRef b;
      b.const_val = pos < 64 && ((value >> pos) & 1u) != 0;
      bits[static_cast<std::size_t>(i)] = b;  // MSB first
    }
    return bits;
  }

  // --- module ----------------------------------------------------------

  void parseModule() {
    Token name = expect(TokKind::kIdent, "module name");
    module_ = &design_.addModule(name.text);
    last_module_ = name.text;
    buses_.clear();
    escaped_map_.clear();
    header_ports_.clear();
    pending_assigns_.clear();

    if (peekPunct('(')) {
      lex_.next();
      if (!peekPunct(')')) parsePortHeader();
      expectPunct(')');
    }
    expectPunct(';');

    while (!peekIdent("endmodule")) {
      parseItem();
    }
    lex_.next();  // endmodule

    resolveAssigns();
  }

  void parsePortHeader() {
    for (;;) {
      const Token& p = lex_.peek();
      if (p.kind == TokKind::kIdent &&
          (p.text == "input" || p.text == "output" || p.text == "inout")) {
        // ANSI style: direction [range] name {, [direction [range]] name}
        parseAnsiPortGroup();
      } else {
        Token t = expect(TokKind::kIdent, "port name");
        header_ports_.push_back(canonName(t));
      }
      if (peekPunct(',')) {
        lex_.next();
        continue;
      }
      break;
    }
  }

  void parseAnsiPortGroup() {
    Token dir_tok = lex_.next();
    PortDir dir = dir_tok.text == "input"    ? PortDir::kInput
                  : dir_tok.text == "output" ? PortDir::kOutput
                                             : PortDir::kInout;
    if (peekIdent("wire") || peekIdent("reg")) lex_.next();
    auto range = parseOptionalRange();
    Token name = expect(TokKind::kIdent, "port name");
    declarePorts(canonName(name), range, dir);
  }

  void parseItem() {
    Token t = lex_.next();
    if (t.kind != TokKind::kIdent) fail("expected module item");
    if (t.text == "input" || t.text == "output" || t.text == "inout") {
      PortDir dir = t.text == "input"    ? PortDir::kInput
                    : t.text == "output" ? PortDir::kOutput
                                         : PortDir::kInout;
      if (peekIdent("wire") || peekIdent("reg")) lex_.next();
      auto range = parseOptionalRange();
      for (;;) {
        Token name = expect(TokKind::kIdent, "port name");
        declarePorts(canonName(name), range, dir);
        if (peekPunct(',')) {
          lex_.next();
          continue;
        }
        break;
      }
      expectPunct(';');
      return;
    }
    if (t.text == "wire" || t.text == "tri" || t.text == "reg") {
      auto range = parseOptionalRange();
      for (;;) {
        Token name = expect(TokKind::kIdent, "net name");
        declareNets(canonName(name), range);
        if (peekPunct(',')) {
          lex_.next();
          continue;
        }
        break;
      }
      expectPunct(';');
      return;
    }
    if (t.text == "supply0" || t.text == "supply1") {
      bool one = t.text == "supply1";
      for (;;) {
        Token name = expect(TokKind::kIdent, "net name");
        NetId id = netForBit(canonName(name), std::nullopt);
        module_->net(id).driver =
            TermRef{one ? TermKind::kConst1 : TermKind::kConst0, 0, 0};
        if (peekPunct(',')) {
          lex_.next();
          continue;
        }
        break;
      }
      expectPunct(';');
      return;
    }
    if (t.text == "assign") {
      auto lhs = parseExpr();
      expectPunct('=');
      auto rhs = parseExpr();
      expectPunct(';');
      if (rhs.size() > lhs.size()) {
        // Drop excess MSBs of an (unsized) constant.
        rhs.erase(rhs.begin(),
                  rhs.begin() + static_cast<std::ptrdiff_t>(rhs.size() - lhs.size()));
      }
      if (lhs.size() != rhs.size()) fail("assign width mismatch");
      for (std::size_t i = 0; i < lhs.size(); ++i) {
        if (!lhs[i].net.valid()) fail("assign to constant");
        pending_assigns_.push_back({lhs[i].net, rhs[i]});
      }
      return;
    }
    // Otherwise: an instance.  t.text is the cell/module type name.
    parseInstance(t.text);
  }

  struct PinBinding {
    std::string pin;       // empty for positional
    std::vector<BitRef> bits;
    bool explicit_empty = false;  // .pin() with no expression
  };

  void parseInstance(const std::string& type) {
    // Skip parameter lists: #( ... )
    if (peekPunct('#')) {
      lex_.next();
      expectPunct('(');
      int depth = 1;
      while (depth > 0) {
        Token t = lex_.next();
        if (t.kind == TokKind::kEof) fail("unterminated parameter list");
        if (t.kind == TokKind::kPunct && t.punct == '(') ++depth;
        if (t.kind == TokKind::kPunct && t.punct == ')') --depth;
      }
    }
    Token inst = expect(TokKind::kIdent, "instance name");
    std::string inst_name = canonName(inst);
    expectPunct('(');
    std::vector<PinBinding> bindings;
    bool named = peekPunct('.');
    if (!peekPunct(')')) {
      for (;;) {
        PinBinding b;
        if (named) {
          expectPunct('.');
          Token pin = expect(TokKind::kIdent, "pin name");
          b.pin = pin.text;
          expectPunct('(');
          if (peekPunct(')')) {
            b.explicit_empty = true;
          } else {
            b.bits = parseExpr();
          }
          expectPunct(')');
        } else {
          b.bits = parseExpr();
        }
        bindings.push_back(std::move(b));
        if (peekPunct(',')) {
          lex_.next();
          continue;
        }
        break;
      }
    }
    expectPunct(')');
    expectPunct(';');
    makeInstance(type, inst_name, named, bindings);
  }

  /// Width and direction of a pin of `type`; consults module definitions
  /// first, then the external provider.
  struct PinMeta {
    PortDir dir = PortDir::kInput;
    std::vector<std::string> bit_names;  // MSB-first scalar pin names
  };

  std::optional<PinMeta> pinMeta(const std::string& type,
                                 const std::string& pin) {
    if (const Module* sub = design_.findModule(type)) {
      // Scalar port?
      PortId pid = sub->findPort(pin);
      if (pid.valid()) {
        PinMeta m;
        m.dir = sub->port(pid).dir;
        m.bit_names = {pin};
        return m;
      }
      // Bus port: collect bits, order by descending bit index (MSB first).
      NameId bus_id = design_.names().find(pin);
      if (bus_id.valid()) {
        std::map<std::int32_t, std::pair<std::string, PortDir>, std::greater<>>
            bits;
        for (const Port& p : sub->ports()) {
          if (p.bus.valid() && p.bus.bus == bus_id) {
            bits.emplace(p.bus.bit,
                         std::make_pair(
                             std::string(design_.names().str(p.name)), p.dir));
          }
        }
        if (!bits.empty()) {
          PinMeta m;
          m.dir = bits.begin()->second.second;
          for (auto& [bit, np] : bits) m.bit_names.push_back(np.first);
          return m;
        }
      }
      return std::nullopt;
    }
    if (auto dir = types_.pinDir(type, pin)) {
      PinMeta m;
      m.dir = *dir;
      m.bit_names = {pin};
      return m;
    }
    return std::nullopt;
  }

  void makeInstance(const std::string& type, const std::string& inst_name,
                    bool named, std::vector<PinBinding>& bindings) {
    if (!named && !bindings.empty()) {
      std::vector<std::string> order;
      if (design_.findModule(type) != nullptr) {
        // Positional connection to a submodule: reconstruct header order.
        // We use declaration order of scalar ports / bus groups.
        order = modulePinOrder(type);
      } else {
        order = types_.pinOrder(type);
      }
      if (order.size() < bindings.size()) {
        fail("positional connection count exceeds pins of " + type);
      }
      for (std::size_t i = 0; i < bindings.size(); ++i) {
        bindings[i].pin = order[i];
      }
    }
    std::vector<Module::PinInit> pins;
    for (PinBinding& b : bindings) {
      auto meta = pinMeta(type, b.pin);
      if (!meta) {
        fail("unknown pin '" + b.pin + "' on cell type '" + type + "'");
      }
      if (b.explicit_empty) {
        for (const std::string& bit_name : meta->bit_names) {
          pins.push_back(Module::PinInit{bit_name, meta->dir, NetId{}});
        }
        continue;
      }
      if (b.bits.size() > meta->bit_names.size()) {
        b.bits.erase(b.bits.begin(),
                     b.bits.begin() + static_cast<std::ptrdiff_t>(
                                          b.bits.size() - meta->bit_names.size()));
      }
      if (b.bits.size() != meta->bit_names.size()) {
        fail("width mismatch on pin '" + b.pin + "' of '" + type + "'");
      }
      for (std::size_t i = 0; i < b.bits.size(); ++i) {
        NetId net = b.bits[i].net;
        if (!net.valid()) {
          net = module_->constNet(b.bits[i].const_val);
        }
        pins.push_back(Module::PinInit{meta->bit_names[i], meta->dir, net});
      }
    }
    module_->addCell(inst_name, type, pins);
  }

  std::vector<std::string> modulePinOrder(const std::string& type) {
    std::vector<std::string> order;
    const Module* sub = design_.findModule(type);
    std::string last_bus;
    for (const Port& p : sub->ports()) {
      if (p.bus.valid()) {
        std::string bus(design_.names().str(p.bus.bus));
        if (bus != last_bus) {
          order.push_back(bus);
          last_bus = bus;
        }
      } else {
        order.push_back(std::string(design_.names().str(p.name)));
        last_bus.clear();
      }
    }
    return order;
  }

  // --- assign folding ---------------------------------------------------

  struct PendingAssign {
    NetId lhs;
    BitRef rhs;
  };

  void resolveAssigns() {
    // Folding merges nets; later assigns may reference nets already merged
    // away, so forward ids through the merge history.
    std::unordered_map<std::uint32_t, NetId> forwarded;
    auto resolve = [&](NetId id) {
      for (;;) {
        auto it = forwarded.find(id.value);
        if (it == forwarded.end()) return id;
        id = it->second;
      }
    };
    auto merge = [&](NetId from, NetId to) {
      module_->mergeNetInto(from, to);
      forwarded.emplace(from.value, to);
    };
    for (const PendingAssign& a : pending_assigns_) {
      NetId lhs_id = resolve(a.lhs);
      Net& lhs = module_->net(lhs_id);
      if (!a.rhs.net.valid()) {
        // Constant drive.
        if (lhs.driver.kind != TermKind::kNone) {
          fail("assign target already driven: " +
               std::string(module_->netName(lhs_id)));
        }
        lhs.driver = TermRef{
            a.rhs.const_val ? TermKind::kConst1 : TermKind::kConst0, 0, 0};
        continue;
      }
      if (!options_.fold_assigns) continue;
      NetId rhs_id = resolve(a.rhs.net);
      if (lhs_id == rhs_id) continue;
      // `assign lhs = rhs` -> rhs drives lhs: merge lhs into rhs, unless lhs
      // is itself a port-driven net (then merge rhs into lhs when rhs has no
      // other driver).
      const Net& lhs_net = module_->net(lhs_id);
      if (lhs_net.driver.kind == TermKind::kNone) {
        merge(lhs_id, rhs_id);
      } else if (lhs_net.driver.isPort() &&
                 module_->net(rhs_id).driver.kind == TermKind::kNone) {
        merge(rhs_id, lhs_id);
      } else {
        fail("cannot fold assign onto driven net " +
             std::string(module_->netName(lhs_id)));
      }
    }
    pending_assigns_.clear();
  }

  Design& design_;
  Lexer lex_;
  const CellTypeProvider& types_;
  VerilogReadOptions options_;

  Module* module_ = nullptr;
  std::string last_module_;
  std::map<std::string, BusDecl> buses_;
  std::map<std::string, std::string> escaped_map_;
  std::vector<std::string> header_ports_;
  std::vector<PendingAssign> pending_assigns_;
};

}  // namespace

void readVerilog(Design& design, std::string_view source,
                 const CellTypeProvider& types,
                 const VerilogReadOptions& options,
                 std::string_view top_hint) {
  Parser parser(design, source, types, options);
  parser.parseFile();
  if (!top_hint.empty() && design.findModule(top_hint) != nullptr) {
    design.setTop(top_hint);
  } else if (!parser.lastModule().empty()) {
    design.setTop(parser.lastModule());
  }
}

void readVerilogFile(Design& design, const std::string& path,
                     const CellTypeProvider& types,
                     const VerilogReadOptions& options,
                     std::string_view top_hint) {
  std::ifstream in(path);
  if (!in) throw VerilogError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  readVerilog(design, ss.str(), types, options, top_hint);
}

}  // namespace desync::netlist
