// Strongly-typed identifiers for netlist objects.
//
// All netlist objects (nets, cells, ports, interned names) are referred to by
// small index-like ids.  Each id type is a distinct struct so that a NetId
// cannot be accidentally passed where a CellId is expected.  Ids are stable
// for the lifetime of the owning Module: removal tombstones the slot instead
// of reindexing.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace desync::netlist {

namespace detail {

/// CRTP base providing the common id plumbing (validity, comparison, hashing).
template <typename Tag>
struct Id {
  static constexpr std::uint32_t kInvalidValue =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t value = kInvalidValue;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalidValue; }
  [[nodiscard]] constexpr std::uint32_t index() const { return value; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};

}  // namespace detail

/// Identifies a net within a Module.
struct NetId : detail::Id<NetId> {
  using Id::Id;
};

/// Identifies a cell instance within a Module.
struct CellId : detail::Id<CellId> {
  using Id::Id;
};

/// Identifies a top-level port within a Module.
struct PortId : detail::Id<PortId> {
  using Id::Id;
};

/// Identifies an interned name within a Design's NameTable.
struct NameId : detail::Id<NameId> {
  using Id::Id;
};

}  // namespace desync::netlist

namespace std {
template <>
struct hash<desync::netlist::NetId> {
  size_t operator()(desync::netlist::NetId id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<desync::netlist::CellId> {
  size_t operator()(desync::netlist::CellId id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<desync::netlist::PortId> {
  size_t operator()(desync::netlist::PortId id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<desync::netlist::NameId> {
  size_t operator()(desync::netlist::NameId id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
}  // namespace std
