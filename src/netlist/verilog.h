// Structural (gate-level) Verilog reader and writer.
//
// The reader accepts the post-synthesis netlist subset the drdesync tool
// consumed (thesis §3.2.1): module/endmodule, ANSI and non-ANSI port styles,
// input/output/inout/wire declarations with ranges, escaped identifiers,
// sized binary/hex constants, simple and concatenated expressions in port
// connections, and `assign` aliases between nets/constants.  Multi-module
// files are supported; instances of modules defined in the same file resolve
// their pin directions from the module definition, everything else from the
// supplied CellTypeProvider.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/cell_type_provider.h"
#include "netlist/netlist.h"

namespace desync::netlist {

/// Error raised on malformed Verilog input, with line information.
class VerilogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct VerilogReadOptions {
  /// Replace escaped identifiers (\foo[2] ) with synthesized simple names,
  /// mirroring drdesync's design-import cleanup (thesis §3.2.1).
  bool simplify_escaped_names = true;
  /// Fold `assign a = b;` aliases by merging nets where possible.
  bool fold_assigns = true;
};

/// Parses Verilog source into `design`.  New modules are added to the design;
/// the last module parsed becomes top unless a module named `top_hint` exists.
void readVerilog(Design& design, std::string_view source,
                 const CellTypeProvider& types,
                 const VerilogReadOptions& options = {},
                 std::string_view top_hint = {});

/// Reads a Verilog file from disk.  Throws VerilogError / std::runtime_error.
void readVerilogFile(Design& design, const std::string& path,
                     const CellTypeProvider& types,
                     const VerilogReadOptions& options = {},
                     std::string_view top_hint = {});

/// Serializes one module as structural Verilog.  Buses are re-assembled into
/// ranged declarations when their bits form a contiguous range.
std::string writeVerilog(const Module& module);

/// Serializes every module of the design (top last, as is conventional).
std::string writeVerilog(const Design& design);

/// Writes the design to a file.
void writeVerilogFile(const Design& design, const std::string& path);

}  // namespace desync::netlist
