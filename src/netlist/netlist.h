// Gate-level netlist database.
//
// A Design owns a set of Modules sharing one NameTable.  A Module is a flat
// graph of cell instances and nets; hierarchy is expressed by instantiating
// another Module of the same Design as a cell (resolved by type name) and is
// normally removed with flatten() before desynchronization, mirroring the
// paper's gate-level-only operating point (thesis §3.2.1).
//
// The database maintains full connectivity in both directions: every net
// knows its driver and sinks, every cell pin knows its net.  All mutation
// goes through Module member functions which keep the two views consistent;
// checkInvariants() verifies the cross-links after algorithmic passes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/ids.h"
#include "netlist/names.h"

namespace desync::netlist {

/// Error raised on netlist consistency violations (double driver, dangling
/// id, duplicate name, ...).
class NetlistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class PortDir : std::uint8_t { kInput, kOutput, kInout };

/// Kind of object a net terminal refers to.
enum class TermKind : std::uint8_t {
  kNone,     ///< unconnected
  kCellPin,  ///< pin `pin` of cell `index`
  kPort,     ///< top-level port `index`
  kConst0,   ///< constant-zero driver
  kConst1,   ///< constant-one driver
};

/// One endpoint of a net: a cell pin, a module port, or a constant source.
struct TermRef {
  TermKind kind = TermKind::kNone;
  std::uint32_t index = 0;  ///< CellId / PortId value depending on kind
  std::uint16_t pin = 0;    ///< pin index within the cell, for kCellPin

  [[nodiscard]] bool isCellPin() const { return kind == TermKind::kCellPin; }
  [[nodiscard]] bool isPort() const { return kind == TermKind::kPort; }
  [[nodiscard]] bool isConst() const {
    return kind == TermKind::kConst0 || kind == TermKind::kConst1;
  }
  [[nodiscard]] CellId cell() const { return CellId{index}; }
  [[nodiscard]] PortId port() const { return PortId{index}; }

  friend bool operator==(const TermRef& a, const TermRef& b) {
    return a.kind == b.kind && a.index == b.index && a.pin == b.pin;
  }
};

/// Membership of a scalar net in a named bus, e.g. data[3] -> {data, 3}.
/// Recorded at parse/build time; the grouping algorithm's by-name bus
/// heuristic (thesis §3.2.2 "Buses") consumes it.
struct BusRef {
  NameId bus;       ///< invalid when the net is a plain scalar
  std::int32_t bit = 0;

  [[nodiscard]] bool valid() const { return bus.valid(); }
};

/// Connection of one cell pin to a net.
struct PinConn {
  NameId name;                 ///< pin name in the cell's type (e.g. "A", "Q")
  PortDir dir = PortDir::kInput;
  NetId net;                   ///< invalid when the pin is left unconnected
};

/// A cell instance.
struct Cell {
  NameId name;
  NameId type;              ///< library cell or module name
  std::vector<PinConn> pins;
  bool valid = true;        ///< false once removed (slot tombstoned)
  bool size_only = false;   ///< SDC set_size_only: resizing allowed, no resynthesis
  bool dont_touch = false;  ///< excluded from optimization passes
};

/// A net (single scalar wire).
struct Net {
  NameId name;
  BusRef bus;                  ///< bus membership, if any
  TermRef driver;              ///< kNone when undriven
  std::vector<TermRef> sinks;  ///< input cell pins and output ports
  bool valid = true;
  bool false_path = false;  ///< user-marked: ignored by grouping (thesis §3.2.2)
};

/// A top-level module port.
struct Port {
  NameId name;
  PortDir dir = PortDir::kInput;
  NetId net;
  BusRef bus;
};

class Design;

/// A flat module: cells + nets + ports with bidirectional connectivity.
class Module {
 public:
  Module(Design& design, NameId name);

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  [[nodiscard]] NameId nameId() const { return name_; }
  [[nodiscard]] std::string_view name() const;
  [[nodiscard]] Design& design() { return *design_; }
  [[nodiscard]] const Design& design() const { return *design_; }

  // --- nets -----------------------------------------------------------

  /// Creates a scalar net.  Throws NetlistError on duplicate name.
  NetId addNet(std::string_view name);
  /// Creates a net that is bit `bit` of bus `bus_name` (net name is usually
  /// "bus[bit]" but any unique name is accepted).
  NetId addNet(std::string_view name, std::string_view bus_name,
               std::int32_t bit);
  /// Returns the net named `name`, or an invalid id.
  [[nodiscard]] NetId findNet(std::string_view name) const;
  /// Lazily creates and returns the module's constant-0 / constant-1 net.
  NetId constNet(bool value);
  /// Removes a net.  All connected pins/ports are disconnected first.
  void removeNet(NetId id);
  /// Moves every sink of `from` onto `to` and removes `from`.  The driver of
  /// `from` (if any) is disconnected.  Used by buffer-removal cleaning.
  void mergeNetInto(NetId from, NetId to);

  [[nodiscard]] Net& net(NetId id);
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] std::string_view netName(NetId id) const;
  [[nodiscard]] std::size_t numNets() const { return live_nets_; }
  [[nodiscard]] std::uint32_t netCapacity() const {
    return static_cast<std::uint32_t>(nets_.size());
  }

  // --- cells ----------------------------------------------------------

  /// Pin specification for addCell.  Owns the pin name so callers can build
  /// specs from temporaries safely.
  struct PinInit {
    std::string name;
    PortDir dir = PortDir::kInput;
    NetId net;  ///< may be invalid for an unconnected pin
  };

  /// Creates a cell instance of `type` and wires its pins.  Output pins
  /// become drivers of their nets (double drive throws), inputs become sinks.
  CellId addCell(std::string_view name, std::string_view type,
                 const std::vector<PinInit>& pins);
  [[nodiscard]] CellId findCell(std::string_view name) const;
  /// Disconnects and tombstones the cell.
  void removeCell(CellId id);
  /// Disconnects and tombstones every cell in `ids` in one sweep over the
  /// module's nets.  Equivalent to calling removeCell on each id (same
  /// final sink order), but O(nets + sinks) total where per-cell removal
  /// pays one sinks-vector scan per disconnected pin — quadratic when many
  /// removed cells share a net (a clock, a reset).
  void removeCells(const std::vector<CellId>& ids);
  /// Re-homes cell-pin sinks of `from` in one pass: sink i moves to
  /// `assign[i]` when that id is valid (the pin is rewired and appended to
  /// the target net's sinks in index order); invalid ids, ports and the
  /// driver stay put.  `assign` is indexed by `from`'s current sink order.
  /// Equivalent to connectPin per moved sink but O(sinks) total.
  void redistributeSinks(NetId from, const std::vector<NetId>& assign);

  /// Connects pin `pin_index` of `cell` to `net` (disconnecting any previous
  /// net on that pin).
  void connectPin(CellId cell, std::size_t pin_index, NetId net);
  void disconnectPin(CellId cell, std::size_t pin_index);
  /// Finds a pin index by name on a cell; returns npos when absent.
  [[nodiscard]] std::size_t findPin(CellId cell, std::string_view pin) const;
  /// Net connected to named pin of cell, or invalid id.
  [[nodiscard]] NetId pinNet(CellId cell, std::string_view pin) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] Cell& cell(CellId id);
  [[nodiscard]] const Cell& cell(CellId id) const;
  /// True when the id refers to a live (not removed) cell.
  [[nodiscard]] bool isLiveCell(CellId id) const {
    return id.valid() && id.index() < cells_.size() &&
           cells_[id.index()].valid;
  }
  [[nodiscard]] std::string_view cellName(CellId id) const;
  [[nodiscard]] std::string_view cellType(CellId id) const;
  [[nodiscard]] std::size_t numCells() const { return live_cells_; }
  [[nodiscard]] std::uint32_t cellCapacity() const {
    return static_cast<std::uint32_t>(cells_.size());
  }

  /// Renames an existing cell (new name must be unused).
  void renameCell(CellId id, std::string_view new_name);

  // --- ports ----------------------------------------------------------

  PortId addPort(std::string_view name, PortDir dir, NetId net);
  PortId addPort(std::string_view name, PortDir dir, NetId net,
                 std::string_view bus_name, std::int32_t bit);
  [[nodiscard]] PortId findPort(std::string_view name) const;
  [[nodiscard]] Port& port(PortId id) { return ports_.at(id.index()); }
  [[nodiscard]] const Port& port(PortId id) const {
    return ports_.at(id.index());
  }
  [[nodiscard]] std::size_t numPorts() const { return ports_.size(); }
  [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }

  // --- iteration ------------------------------------------------------

  /// Ids of all live cells, in creation order.
  [[nodiscard]] std::vector<CellId> cellIds() const;
  /// Ids of all live nets, in creation order.
  [[nodiscard]] std::vector<NetId> netIds() const;

  template <typename F>
  void forEachCell(F&& f) const {
    for (std::uint32_t i = 0; i < cells_.size(); ++i) {
      if (cells_[i].valid) f(CellId{i});
    }
  }
  template <typename F>
  void forEachNet(F&& f) const {
    for (std::uint32_t i = 0; i < nets_.size(); ++i) {
      if (nets_[i].valid) f(NetId{i});
    }
  }

  // --- snapshot support (src/flowdb) ----------------------------------
  //
  // FlowDB snapshots must reproduce a module *slot-exactly*: NetId/CellId
  // are positional, so serialized pass state (region membership, enable
  // nets, ...) stays valid across a save/restore only if tombstoned slots
  // are preserved too.  rawNets()/rawCells() expose the full slot arrays
  // (ports() already does); restoreRawState() replaces the module content
  // wholesale and rebuilds the name indices and live counts.

  /// Full net slot array, tombstones included (read-only; for snapshots).
  [[nodiscard]] const std::vector<Net>& rawNets() const { return nets_; }
  /// Full cell slot array, tombstones included.
  [[nodiscard]] const std::vector<Cell>& rawCells() const { return cells_; }
  /// The lazily-created constant net slot (invalid when never requested);
  /// cached outside the net array, so snapshots persist it explicitly.
  [[nodiscard]] NetId constNetRaw(bool value) const {
    return const_net_[value ? 1 : 0];
  }

  /// Complete module content for restoreRawState.
  struct RawState {
    std::vector<Net> nets;
    std::vector<Cell> cells;
    std::vector<Port> ports;
    NetId const_nets[2];
  };

  /// Replaces the module's entire content with `state` (slot arrays are
  /// adopted as-is, preserving ids), rebuilds the by-name lookup maps and
  /// live counts.  All NameIds in `state` must belong to this design's
  /// NameTable.  Throws NetlistError on duplicate live names.
  void restoreRawState(RawState state);

  // --- validation -----------------------------------------------------

  /// Structural consistency check: every pin's net lists the pin back as
  /// driver/sink, no double drivers, tombstoned objects unreferenced.
  /// Returns human-readable problem descriptions (empty = consistent).
  [[nodiscard]] std::vector<std::string> checkInvariants() const;

 private:
  void attachTerm(NetId net, TermRef term, PortDir dir);
  void detachTerm(NetId net, TermRef term, PortDir dir);
  [[nodiscard]] NameTable& names();
  [[nodiscard]] const NameTable& names() const;

  Design* design_;
  NameId name_;
  std::vector<Net> nets_;
  std::vector<Cell> cells_;
  std::vector<Port> ports_;
  std::unordered_map<NameId, NetId> net_by_name_;
  std::unordered_map<NameId, CellId> cell_by_name_;
  std::unordered_map<NameId, PortId> port_by_name_;
  std::size_t live_nets_ = 0;
  std::size_t live_cells_ = 0;
  NetId const_net_[2];  // lazily created constant 0 / 1 nets

  friend class Design;  // re-points design_ when a Design is moved
};

/// A design: shared name table + a set of modules, one of which is top.
class Design {
 public:
  Design() = default;
  Design(const Design&) = delete;
  Design& operator=(const Design&) = delete;
  // Moves must re-point every module's owner back-pointer: modules live at
  // stable deque addresses, so only design_ goes stale on a move.
  Design(Design&& other) noexcept
      : names_(std::move(other.names_)),
        shared_names_(other.shared_names_),
        modules_(std::move(other.modules_)),
        module_by_name_(std::move(other.module_by_name_)),
        top_(other.top_) {
    for (auto& m : modules_) m.design_ = this;
    other.top_ = nullptr;
  }
  Design& operator=(Design&& other) noexcept {
    if (this == &other) return *this;
    names_ = std::move(other.names_);
    shared_names_ = other.shared_names_;
    modules_ = std::move(other.modules_);
    module_by_name_ = std::move(other.module_by_name_);
    top_ = other.top_;
    for (auto& m : modules_) m.design_ = this;
    other.top_ = nullptr;
    return *this;
  }

  [[nodiscard]] NameTable& names() {
    return shared_names_ != nullptr ? *shared_names_ : names_;
  }
  [[nodiscard]] const NameTable& names() const {
    return shared_names_ != nullptr ? *shared_names_ : names_;
  }

  /// Makes this design resolve names through `other`'s table instead of
  /// its own.  NameTables are append-only, so ids stay valid in both
  /// designs however either one grows; the caller guarantees `other`
  /// outlives this design.  Only allowed while this design is empty (no
  /// modules, nothing interned) — used by snapshotModule() so a snapshot
  /// can adopt raw slot arrays without re-interning every name.
  void shareNames(Design& other) {
    if (numModules() != 0 || names_.size() != 0) {
      throw NetlistError("shareNames on a non-empty design");
    }
    shared_names_ = &other.names();
  }

  /// Creates a module.  Throws NetlistError on duplicate name.
  Module& addModule(std::string_view name);
  /// Finds a module by name; nullptr if absent.
  [[nodiscard]] Module* findModule(std::string_view name);
  [[nodiscard]] const Module* findModule(std::string_view name) const;

  /// Declares which module is the top of the design.
  void setTop(std::string_view name);
  [[nodiscard]] Module& top();
  [[nodiscard]] const Module& top() const;
  [[nodiscard]] bool hasTop() const { return top_ != nullptr; }

  [[nodiscard]] std::size_t numModules() const { return modules_.size(); }
  template <typename F>
  void forEachModule(F&& f) {
    for (auto& m : modules_) f(m);
  }
  template <typename F>
  void forEachModule(F&& f) const {
    for (const auto& m : modules_) f(m);
  }

 private:
  NameTable names_;
  NameTable* shared_names_ = nullptr;  // see shareNames()
  std::deque<Module> modules_;  // deque: stable addresses
  std::unordered_map<NameId, Module*> module_by_name_;
  Module* top_ = nullptr;
};

}  // namespace desync::netlist
