// Netlist "logic cleaning" passes (thesis §3.2.2 "Logic Cleaning").
//
// Synthesis tools insert buffers and inverter pairs purely for drive
// strength; those cells introduce false logic dependencies between the
// combinational clouds the grouping algorithm wants to separate (thesis
// Fig 3.5).  These passes strip them.  In an in-place-optimization backend
// flow the removed cells are not restored — the backend re-buffers.
#pragma once

#include <functional>
#include <string_view>

#include "netlist/netlist.h"

namespace desync::netlist {

/// Classification callbacks used by the cleaning passes.  Typically bound to
/// the Liberty gatefile's buffer/inverter queries.
struct CleaningRules {
  std::function<bool(std::string_view type)> is_buffer;
  std::function<bool(std::string_view type)> is_inverter;
  /// Name of the single data input pin of a buffer or inverter, given its
  /// type.  Defaults assume the first input pin when unset.
  std::function<std::string(std::string_view type)> input_pin;
  std::function<std::string(std::string_view type)> output_pin;
};

struct CleaningStats {
  std::size_t buffers_removed = 0;
  std::size_t inverter_pairs_removed = 0;
};

/// Removes all buffer cells by shorting their output net onto their input
/// net, and collapses back-to-back inverter pairs (the second inverter's
/// output is re-driven by the first inverter's input; a first inverter left
/// without sinks is removed too).  Buffers driving primary output ports are
/// also removed; the writer re-establishes the port alias.
CleaningStats cleanLogic(Module& module, const CleaningRules& rules);

}  // namespace desync::netlist
