#include "netlist/netlist.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace desync::netlist {

namespace {

[[noreturn]] void fail(const std::string& msg) { throw NetlistError(msg); }

}  // namespace

// ---------------------------------------------------------------- Module

Module::Module(Design& design, NameId name) : design_(&design), name_(name) {}

NameTable& Module::names() { return design_->names(); }
const NameTable& Module::names() const { return design_->names(); }

std::string_view Module::name() const { return names().str(name_); }

NetId Module::addNet(std::string_view name) {
  NameId nid = names().intern(name);
  if (net_by_name_.count(nid) != 0) {
    fail("duplicate net name: " + std::string(name));
  }
  NetId id{static_cast<std::uint32_t>(nets_.size())};
  Net n;
  n.name = nid;
  nets_.push_back(std::move(n));
  net_by_name_.emplace(nid, id);
  ++live_nets_;
  return id;
}

NetId Module::addNet(std::string_view name, std::string_view bus_name,
                     std::int32_t bit) {
  NetId id = addNet(name);
  nets_[id.index()].bus = BusRef{names().intern(bus_name), bit};
  return id;
}

NetId Module::findNet(std::string_view name) const {
  NameId nid = names().find(name);
  if (!nid.valid()) return NetId{};
  auto it = net_by_name_.find(nid);
  return it == net_by_name_.end() ? NetId{} : it->second;
}

NetId Module::constNet(bool value) {
  NetId& slot = const_net_[value ? 1 : 0];
  if (slot.valid() && nets_[slot.index()].valid) return slot;
  std::string base = value ? "const1" : "const0";
  NameId nid = names().makeUnique(base);
  slot = addNet(names().str(nid));
  nets_[slot.index()].driver =
      TermRef{value ? TermKind::kConst1 : TermKind::kConst0, 0, 0};
  return slot;
}

void Module::removeNet(NetId id) {
  Net& n = net(id);
  // Detach any remaining terminals.
  if (n.driver.isCellPin()) {
    cells_.at(n.driver.index).pins.at(n.driver.pin).net = NetId{};
  } else if (n.driver.isPort()) {
    ports_.at(n.driver.index).net = NetId{};
  }
  for (const TermRef& t : n.sinks) {
    if (t.isCellPin()) {
      cells_.at(t.index).pins.at(t.pin).net = NetId{};
    } else if (t.isPort()) {
      ports_.at(t.index).net = NetId{};
    }
  }
  n.sinks.clear();
  n.driver = TermRef{};
  n.valid = false;
  net_by_name_.erase(n.name);
  --live_nets_;
}

void Module::mergeNetInto(NetId from, NetId to) {
  if (from == to) return;
  Net& src = net(from);
  // Re-point every sink of `from` to `to`.
  std::vector<TermRef> sinks = src.sinks;  // copy: attachTerm mutates lists
  for (const TermRef& t : sinks) {
    if (t.isCellPin()) {
      connectPin(t.cell(), t.pin, to);
    } else if (t.isPort()) {
      Port& p = ports_.at(t.index);
      // attach/detachTerm take the *pin-equivalent* direction: an output
      // port consumes the net like an input pin does.
      const PortDir as_pin =
          p.dir == PortDir::kInput ? PortDir::kOutput : PortDir::kInput;
      detachTerm(from, t, as_pin);
      p.net = to;
      attachTerm(to, t, as_pin);
    }
  }
  removeNet(from);
}

Net& Module::net(NetId id) {
  Net& n = nets_.at(id.index());
  if (!n.valid) fail("access to removed net");
  return n;
}

const Net& Module::net(NetId id) const {
  const Net& n = nets_.at(id.index());
  if (!n.valid) fail("access to removed net");
  return n;
}

std::string_view Module::netName(NetId id) const {
  return names().str(net(id).name);
}

CellId Module::addCell(std::string_view name, std::string_view type,
                       const std::vector<PinInit>& pins) {
  NameId nid = names().intern(name);
  if (cell_by_name_.count(nid) != 0) {
    fail("duplicate cell name: " + std::string(name));
  }
  CellId id{static_cast<std::uint32_t>(cells_.size())};
  Cell c;
  c.name = nid;
  c.type = names().intern(type);
  c.pins.reserve(pins.size());
  for (const PinInit& p : pins) {
    c.pins.push_back(PinConn{names().intern(p.name), p.dir, NetId{}});
  }
  cells_.push_back(std::move(c));
  cell_by_name_.emplace(nid, id);
  ++live_cells_;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].net.valid()) connectPin(id, i, pins[i].net);
  }
  return id;
}

CellId Module::findCell(std::string_view name) const {
  NameId nid = names().find(name);
  if (!nid.valid()) return CellId{};
  auto it = cell_by_name_.find(nid);
  return it == cell_by_name_.end() ? CellId{} : it->second;
}

void Module::removeCell(CellId id) {
  Cell& c = cell(id);
  for (std::size_t i = 0; i < c.pins.size(); ++i) {
    if (c.pins[i].net.valid()) disconnectPin(id, i);
  }
  c.valid = false;
  cell_by_name_.erase(c.name);
  --live_cells_;
}

void Module::removeCells(const std::vector<CellId>& ids) {
  if (ids.empty()) return;
  for (CellId id : ids) {
    Cell& c = cell(id);  // validates liveness (and catches duplicates)
    c.valid = false;
    cell_by_name_.erase(c.name);
    --live_cells_;
  }
  // One sweep dropping every term that points at a tombstoned cell.  A
  // stale term cannot predate this call (removal always detaches), so any
  // dead slot found here is one of `ids`.  erase_if keeps the survivors'
  // relative order — the same final order per-cell removal produces.
  forEachNet([&](NetId nid) {
    Net& n = nets_[nid.index()];
    if (n.driver.isCellPin() && !cells_[n.driver.cell().index()].valid) {
      n.driver = TermRef{};
    }
    std::erase_if(n.sinks, [&](const TermRef& t) {
      return t.isCellPin() && !cells_[t.cell().index()].valid;
    });
  });
  for (CellId id : ids) {
    for (PinConn& pin : cells_[id.index()].pins) pin.net = NetId{};
  }
}

void Module::redistributeSinks(NetId from, const std::vector<NetId>& assign) {
  std::vector<TermRef> kept;
  kept.reserve(net(from).sinks.size());
  const std::vector<TermRef>& sinks = net(from).sinks;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    const TermRef t = sinks[i];
    const NetId to = i < assign.size() ? assign[i] : NetId{};
    if (!to.valid() || !t.isCellPin()) {
      kept.push_back(t);
      continue;
    }
    cells_.at(t.cell().index()).pins.at(t.pin).net = to;
    net(to).sinks.push_back(t);
  }
  net(from).sinks = std::move(kept);
}

void Module::connectPin(CellId cell_id, std::size_t pin_index, NetId net_id) {
  Cell& c = cell(cell_id);
  PinConn& pin = c.pins.at(pin_index);
  if (pin.net.valid()) disconnectPin(cell_id, pin_index);
  (void)net(net_id);  // validate
  pin.net = net_id;
  TermRef term{TermKind::kCellPin, cell_id.value,
               static_cast<std::uint16_t>(pin_index)};
  attachTerm(net_id, term, pin.dir);
}

void Module::disconnectPin(CellId cell_id, std::size_t pin_index) {
  Cell& c = cell(cell_id);
  PinConn& pin = c.pins.at(pin_index);
  if (!pin.net.valid()) return;
  TermRef term{TermKind::kCellPin, cell_id.value,
               static_cast<std::uint16_t>(pin_index)};
  detachTerm(pin.net, term, pin.dir);
  pin.net = NetId{};
}

std::size_t Module::findPin(CellId cell_id, std::string_view pin) const {
  const Cell& c = cell(cell_id);
  NameId nid = names().find(pin);
  if (!nid.valid()) return npos;
  for (std::size_t i = 0; i < c.pins.size(); ++i) {
    if (c.pins[i].name == nid) return i;
  }
  return npos;
}

NetId Module::pinNet(CellId cell_id, std::string_view pin) const {
  std::size_t idx = findPin(cell_id, pin);
  return idx == npos ? NetId{} : cell(cell_id).pins[idx].net;
}

Cell& Module::cell(CellId id) {
  Cell& c = cells_.at(id.index());
  if (!c.valid) fail("access to removed cell");
  return c;
}

const Cell& Module::cell(CellId id) const {
  const Cell& c = cells_.at(id.index());
  if (!c.valid) fail("access to removed cell");
  return c;
}

std::string_view Module::cellName(CellId id) const {
  return names().str(cell(id).name);
}

std::string_view Module::cellType(CellId id) const {
  return names().str(cell(id).type);
}

void Module::renameCell(CellId id, std::string_view new_name) {
  Cell& c = cell(id);
  NameId nid = names().intern(new_name);
  if (cell_by_name_.count(nid) != 0) {
    fail("duplicate cell name on rename: " + std::string(new_name));
  }
  cell_by_name_.erase(c.name);
  c.name = nid;
  cell_by_name_.emplace(nid, id);
}

PortId Module::addPort(std::string_view name, PortDir dir, NetId net_id) {
  NameId nid = names().intern(name);
  if (port_by_name_.count(nid) != 0) {
    fail("duplicate port name: " + std::string(name));
  }
  PortId id{static_cast<std::uint32_t>(ports_.size())};
  ports_.push_back(Port{nid, dir, NetId{}, BusRef{}});
  port_by_name_.emplace(nid, id);
  if (net_id.valid()) {
    ports_.back().net = net_id;
    TermRef term{TermKind::kPort, id.value, 0};
    // An input port *drives* its net; an output port is a sink of it.
    attachTerm(net_id, term,
               dir == PortDir::kInput ? PortDir::kOutput : PortDir::kInput);
  }
  return id;
}

PortId Module::addPort(std::string_view name, PortDir dir, NetId net_id,
                       std::string_view bus_name, std::int32_t bit) {
  PortId id = addPort(name, dir, net_id);
  ports_.at(id.index()).bus = BusRef{names().intern(bus_name), bit};
  return id;
}

PortId Module::findPort(std::string_view name) const {
  NameId nid = names().find(name);
  if (!nid.valid()) return PortId{};
  auto it = port_by_name_.find(nid);
  return it == port_by_name_.end() ? PortId{} : it->second;
}

std::vector<CellId> Module::cellIds() const {
  std::vector<CellId> out;
  out.reserve(live_cells_);
  forEachCell([&](CellId id) { out.push_back(id); });
  return out;
}

std::vector<NetId> Module::netIds() const {
  std::vector<NetId> out;
  out.reserve(live_nets_);
  forEachNet([&](NetId id) { out.push_back(id); });
  return out;
}

void Module::attachTerm(NetId net_id, TermRef term, PortDir dir) {
  Net& n = net(net_id);
  // By convention the `dir` argument is the direction of the *pin*: an
  // output pin drives the net, an input pin is a sink.  (For ports the
  // caller already flipped the direction.)
  const bool drives = (dir == PortDir::kOutput || dir == PortDir::kInout);
  if (drives) {
    if (n.driver.kind != TermKind::kNone) {
      fail("net '" + std::string(names().str(n.name)) +
           "' has multiple drivers");
    }
    n.driver = term;
  } else {
    n.sinks.push_back(term);
  }
}

void Module::detachTerm(NetId net_id, TermRef term, PortDir dir) {
  Net& n = net(net_id);
  const bool drives = (dir == PortDir::kOutput || dir == PortDir::kInout);
  if (drives && n.driver == term) {
    n.driver = TermRef{};
    return;
  }
  auto it = std::find(n.sinks.begin(), n.sinks.end(), term);
  if (it != n.sinks.end()) {
    n.sinks.erase(it);
  }
}

void Module::restoreRawState(RawState state) {
  nets_ = std::move(state.nets);
  cells_ = std::move(state.cells);
  ports_ = std::move(state.ports);
  const_net_[0] = state.const_nets[0];
  const_net_[1] = state.const_nets[1];

  net_by_name_.clear();
  cell_by_name_.clear();
  port_by_name_.clear();
  live_nets_ = 0;
  live_cells_ = 0;
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    if (!nets_[i].valid) continue;
    if (!net_by_name_.emplace(nets_[i].name, NetId{i}).second) {
      fail("restoreRawState: duplicate net name: " +
           std::string(names().str(nets_[i].name)));
    }
    ++live_nets_;
  }
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (!cells_[i].valid) continue;
    if (!cell_by_name_.emplace(cells_[i].name, CellId{i}).second) {
      fail("restoreRawState: duplicate cell name: " +
           std::string(names().str(cells_[i].name)));
    }
    ++live_cells_;
  }
  for (std::uint32_t i = 0; i < ports_.size(); ++i) {
    if (!port_by_name_.emplace(ports_[i].name, PortId{i}).second) {
      fail("restoreRawState: duplicate port name: " +
           std::string(names().str(ports_[i].name)));
    }
  }
}

std::vector<std::string> Module::checkInvariants() const {
  std::vector<std::string> problems;
  auto report = [&](const std::string& s) { problems.push_back(s); };

  forEachCell([&](CellId cid) {
    const Cell& c = cells_[cid.index()];
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      const PinConn& pin = c.pins[p];
      if (!pin.net.valid()) continue;
      if (pin.net.index() >= nets_.size() || !nets_[pin.net.index()].valid) {
        report("cell " + std::string(names().str(c.name)) +
               " pin references dead net");
        continue;
      }
      const Net& n = nets_[pin.net.index()];
      TermRef expect{TermKind::kCellPin, cid.value,
                     static_cast<std::uint16_t>(p)};
      if (pin.dir == PortDir::kOutput) {
        if (!(n.driver == expect)) {
          report("output pin of " + std::string(names().str(c.name)) +
                 " not registered as driver of " +
                 std::string(names().str(n.name)));
        }
      } else {
        if (std::find(n.sinks.begin(), n.sinks.end(), expect) ==
            n.sinks.end()) {
          report("input pin of " + std::string(names().str(c.name)) +
                 " not registered as sink of " +
                 std::string(names().str(n.name)));
        }
      }
    }
  });

  forEachNet([&](NetId nid) {
    const Net& n = nets_[nid.index()];
    auto checkTerm = [&](const TermRef& t, bool as_driver) {
      if (t.kind == TermKind::kNone || t.isConst()) return;
      if (t.isCellPin()) {
        if (t.index >= cells_.size() || !cells_[t.index].valid) {
          report("net " + std::string(names().str(n.name)) +
                 " references dead cell");
          return;
        }
        const Cell& c = cells_[t.index];
        if (t.pin >= c.pins.size() || !(c.pins[t.pin].net == nid)) {
          report("net " + std::string(names().str(n.name)) +
                 " terminal not mirrored on cell pin");
          return;
        }
        const bool pin_drives = c.pins[t.pin].dir != PortDir::kInput;
        if (pin_drives != as_driver) {
          report("net " + std::string(names().str(n.name)) +
                 " direction mismatch with cell pin");
        }
      } else if (t.isPort()) {
        if (t.index >= ports_.size() || !(ports_[t.index].net == nid)) {
          report("net " + std::string(names().str(n.name)) +
                 " terminal not mirrored on port");
        }
      }
    };
    checkTerm(n.driver, /*as_driver=*/true);
    for (const TermRef& t : n.sinks) checkTerm(t, /*as_driver=*/false);
  });

  return problems;
}

// ---------------------------------------------------------------- Design

Module& Design::addModule(std::string_view name) {
  NameId nid = names_.intern(name);
  if (module_by_name_.count(nid) != 0) {
    fail("duplicate module name: " + std::string(name));
  }
  modules_.emplace_back(*this, nid);
  Module& m = modules_.back();
  module_by_name_.emplace(nid, &m);
  if (top_ == nullptr) top_ = &m;
  return m;
}

Module* Design::findModule(std::string_view name) {
  NameId nid = names_.find(name);
  if (!nid.valid()) return nullptr;
  auto it = module_by_name_.find(nid);
  return it == module_by_name_.end() ? nullptr : it->second;
}

const Module* Design::findModule(std::string_view name) const {
  NameId nid = names_.find(name);
  if (!nid.valid()) return nullptr;
  auto it = module_by_name_.find(nid);
  return it == module_by_name_.end() ? nullptr : it->second;
}

void Design::setTop(std::string_view name) {
  Module* m = findModule(name);
  if (m == nullptr) fail("setTop: no module named " + std::string(name));
  top_ = m;
}

Module& Design::top() {
  if (top_ == nullptr) fail("design has no top module");
  return *top_;
}

const Module& Design::top() const {
  if (top_ == nullptr) fail("design has no top module");
  return *top_;
}

}  // namespace desync::netlist
