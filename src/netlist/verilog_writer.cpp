#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "netlist/verilog.h"

namespace desync::netlist {
namespace {

/// True when `name` can be emitted without escaping.
bool isSimpleName(std::string_view name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) return false;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '$') {
      return false;
    }
  }
  return true;
}

class Writer {
 public:
  explicit Writer(const Module& m) : m_(m) {}

  std::string run() {
    collectBuses();
    emitHeader();
    emitDeclarations();
    emitInstances();
    out_ << "endmodule\n";
    return out_.str();
  }

 private:
  struct BusInfo {
    std::int32_t min_bit = 0;
    std::int32_t max_bit = 0;
    std::set<std::int32_t> bits;
    [[nodiscard]] bool contiguous() const {
      return static_cast<std::int32_t>(bits.size()) ==
             max_bit - min_bit + 1;
    }
  };

  /// Name of a net as referenced in expressions (bus select or escaped).
  std::string ref(NetId id) const {
    const Net& n = m_.net(id);
    std::string_view name = m_.design().names().str(n.name);
    if (n.bus.valid()) {
      std::string bus(m_.design().names().str(n.bus.bus));
      auto it = buses_.find(bus);
      if (it != buses_.end() && it->second.contiguous()) {
        return bus + "[" + std::to_string(n.bus.bit) + "]";
      }
    }
    if (isSimpleName(name)) return std::string(name);
    return "\\" + std::string(name) + " ";
  }

  std::string refName(std::string_view name) const {
    if (isSimpleName(name)) return std::string(name);
    return "\\" + std::string(name) + " ";
  }

  void collectBuses() {
    m_.forEachNet([&](NetId id) {
      const Net& n = m_.net(id);
      if (!n.bus.valid()) return;
      std::string bus(m_.design().names().str(n.bus.bus));
      auto [it, inserted] = buses_.try_emplace(bus);
      BusInfo& info = it->second;
      if (inserted) {
        info.min_bit = info.max_bit = n.bus.bit;
      } else {
        info.min_bit = std::min(info.min_bit, n.bus.bit);
        info.max_bit = std::max(info.max_bit, n.bus.bit);
      }
      info.bits.insert(n.bus.bit);
    });
  }

  void emitHeader() {
    out_ << "module " << refName(m_.name()) << " (";
    bool first = true;
    std::string last_bus;
    for (const Port& p : m_.ports()) {
      std::string token;
      if (p.bus.valid()) {
        std::string bus(m_.design().names().str(p.bus.bus));
        auto it = buses_.find(bus);
        if (it != buses_.end() && it->second.contiguous()) {
          if (bus == last_bus) continue;  // already listed
          last_bus = bus;
          token = refName(bus);
        }
      }
      if (token.empty()) {
        last_bus.clear();
        token = refName(m_.design().names().str(p.name));
      }
      if (!first) out_ << ", ";
      out_ << token;
      first = false;
    }
    out_ << ");\n";
  }

  void emitDeclarations() {
    // Port directions.
    std::set<std::string> done_port_bus;
    for (const Port& p : m_.ports()) {
      const char* dir = p.dir == PortDir::kInput    ? "input"
                        : p.dir == PortDir::kOutput ? "output"
                                                    : "inout";
      if (p.bus.valid()) {
        std::string bus(m_.design().names().str(p.bus.bus));
        auto it = buses_.find(bus);
        if (it != buses_.end() && it->second.contiguous()) {
          if (done_port_bus.insert(bus).second) {
            out_ << "  " << dir << " [" << it->second.max_bit << ":"
                 << it->second.min_bit << "] " << refName(bus) << ";\n";
          }
          continue;
        }
      }
      out_ << "  " << dir << " "
           << refName(m_.design().names().str(p.name)) << ";\n";
    }
    // Wire declarations (skip nets that are ports — Verilog implies them).
    // A port declaration implicitly declares a net of the same name, so skip
    // the wire declaration only when the connected net actually carries the
    // port's name.
    std::set<NetId> port_nets;
    for (const Port& p : m_.ports()) {
      if (p.net.valid() && m_.net(p.net).name == p.name) {
        port_nets.insert(p.net);
      }
    }
    std::set<std::string> done_wire_bus;
    std::ostringstream consts;
    m_.forEachNet([&](NetId id) {
      const Net& n = m_.net(id);
      const bool is_port_net = port_nets.count(id) != 0;
      if (n.bus.valid()) {
        std::string bus(m_.design().names().str(n.bus.bus));
        auto it = buses_.find(bus);
        if (it != buses_.end() && it->second.contiguous()) {
          if (!is_port_net && done_port_bus.count(bus) == 0 &&
              done_wire_bus.insert(bus).second) {
            out_ << "  wire [" << it->second.max_bit << ":"
                 << it->second.min_bit << "] " << refName(bus) << ";\n";
          }
          if (n.driver.isConst()) {
            consts << "  assign " << ref(id) << " = 1'b"
                   << (n.driver.kind == TermKind::kConst1 ? 1 : 0) << ";\n";
          }
          return;
        }
      }
      if (!is_port_net) {
        out_ << "  wire " << ref(id) << ";\n";
      }
      if (n.driver.isConst()) {
        consts << "  assign " << ref(id) << " = 1'b"
               << (n.driver.kind == TermKind::kConst1 ? 1 : 0) << ";\n";
      }
    });
    out_ << consts.str();
    // Ports whose connected net carries a different name need an explicit
    // alias (this arises after cleaning passes merge nets across a removed
    // buffer).
    for (const Port& p : m_.ports()) {
      if (!p.net.valid()) continue;
      const Net& n = m_.net(p.net);
      if (n.name == p.name) continue;
      std::string port_ref = refName(m_.design().names().str(p.name));
      if (p.dir == PortDir::kInput) {
        out_ << "  assign " << ref(p.net) << " = " << port_ref << ";\n";
      } else {
        out_ << "  assign " << port_ref << " = " << ref(p.net) << ";\n";
      }
    }
  }

  void emitInstances() {
    m_.forEachCell([&](CellId id) {
      const Cell& c = m_.cell(id);
      out_ << "  " << refName(m_.design().names().str(c.type)) << " "
           << refName(m_.design().names().str(c.name)) << " (";
      bool first = true;
      for (const PinConn& pin : c.pins) {
        if (!first) out_ << ", ";
        first = false;
        out_ << "." << m_.design().names().str(pin.name) << "(";
        if (pin.net.valid()) out_ << ref(pin.net);
        out_ << ")";
      }
      out_ << ");\n";
    });
  }

  const Module& m_;
  std::map<std::string, BusInfo> buses_;
  std::ostringstream out_;
};

}  // namespace

std::string writeVerilog(const Module& module) { return Writer(module).run(); }

std::string writeVerilog(const Design& design) {
  std::string out;
  const Module* top = design.hasTop() ? &design.top() : nullptr;
  design.forEachModule([&](const Module& m) {
    if (&m == top) return;
    out += writeVerilog(m);
    out += "\n";
  });
  if (top != nullptr) out += writeVerilog(*top);
  return out;
}

void writeVerilogFile(const Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw VerilogError("cannot open for write: " + path);
  out << writeVerilog(design);
}

}  // namespace desync::netlist
