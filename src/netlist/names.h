// String interning for netlist object names.
//
// A NameTable maps strings to dense NameIds and back.  Every Module in a
// Design shares one table so that name comparisons across modules are integer
// comparisons.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "netlist/ids.h"

namespace desync::netlist {

/// Bidirectional string <-> NameId interner.  Strings are never removed;
/// NameIds stay valid for the table's lifetime.
class NameTable {
 public:
  /// Interns `s`, returning the existing id when already present.
  NameId intern(std::string_view s);

  /// Looks up an existing name; returns an invalid NameId if absent.
  [[nodiscard]] NameId find(std::string_view s) const;

  /// Returns the string for an interned id.  Precondition: id is valid and
  /// was produced by this table.
  [[nodiscard]] std::string_view str(NameId id) const;

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

  /// Produces a name not yet present in the table by appending a numeric
  /// suffix to `base` if needed, and interns it.
  NameId makeUnique(std::string_view base);

 private:
  // deque keeps string objects at stable addresses, so the string_view keys
  // in index_ (which point into the stored strings, including SSO buffers)
  // remain valid as the table grows.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, NameId> index_;
};

}  // namespace desync::netlist
