#include "netlist/cleaning.h"

#include <string>
#include <vector>

namespace desync::netlist {
namespace {

/// Resolves the (single) input and output pin indices of a buffer/inverter.
struct InOut {
  std::size_t in = Module::npos;
  std::size_t out = Module::npos;
};

InOut resolvePins(const Module& m, CellId id, const CleaningRules& rules) {
  const Cell& c = m.cell(id);
  std::string type(m.cellType(id));
  InOut io;
  std::string in_name = rules.input_pin ? rules.input_pin(type) : "";
  std::string out_name = rules.output_pin ? rules.output_pin(type) : "";
  for (std::size_t i = 0; i < c.pins.size(); ++i) {
    const PinConn& p = c.pins[i];
    std::string_view pname = m.design().names().str(p.name);
    if (p.dir == PortDir::kInput) {
      if (io.in == Module::npos && (in_name.empty() || pname == in_name)) {
        io.in = i;
      }
    } else if (p.dir == PortDir::kOutput) {
      if (io.out == Module::npos && (out_name.empty() || pname == out_name)) {
        io.out = i;
      }
    }
  }
  return io;
}

}  // namespace

CleaningStats cleanLogic(Module& module, const CleaningRules& rules) {
  CleaningStats stats;

  // Pass 1: buffers.  Merge each buffer's output net into its input net.
  for (CellId id : module.cellIds()) {
    if (!rules.is_buffer || !rules.is_buffer(module.cellType(id))) continue;
    InOut io = resolvePins(module, id, rules);
    if (io.in == Module::npos || io.out == Module::npos) continue;
    NetId in_net = module.cell(id).pins[io.in].net;
    NetId out_net = module.cell(id).pins[io.out].net;
    module.removeCell(id);
    if (out_net.valid() && in_net.valid()) {
      module.mergeNetInto(out_net, in_net);
    }
    ++stats.buffers_removed;
  }

  // Pass 2: inverter pairs.  When inverter B's input is driven by inverter
  // A, re-drive B's sinks from A's input.  Repeats to convergence so chains
  // of four, six, ... collapse fully.
  bool changed = true;
  while (changed) {
    changed = false;
    for (CellId b_id : module.cellIds()) {
      if (!rules.is_inverter || !rules.is_inverter(module.cellType(b_id))) {
        continue;
      }
      InOut b_io = resolvePins(module, b_id, rules);
      if (b_io.in == Module::npos || b_io.out == Module::npos) continue;
      NetId mid = module.cell(b_id).pins[b_io.in].net;
      if (!mid.valid()) continue;
      const TermRef drv = module.net(mid).driver;
      if (!drv.isCellPin()) continue;
      CellId a_id = drv.cell();
      if (a_id == b_id) continue;
      if (!rules.is_inverter(module.cellType(a_id))) continue;
      InOut a_io = resolvePins(module, a_id, rules);
      if (a_io.in == Module::npos) continue;
      NetId src = module.cell(a_id).pins[a_io.in].net;
      NetId b_out = module.cell(b_id).pins[b_io.out].net;
      if (!src.valid() || !b_out.valid()) continue;
      module.removeCell(b_id);
      module.mergeNetInto(b_out, src);
      // Drop A too when nothing else consumes the intermediate net.
      if (module.net(mid).sinks.empty()) {
        module.removeCell(a_id);
        module.removeNet(mid);
      }
      ++stats.inverter_pairs_removed;
      changed = true;
    }
  }
  return stats;
}

}  // namespace desync::netlist
