#include "netlist/blif.h"

#include <fstream>
#include <sstream>

namespace desync::netlist {
namespace {

/// BLIF identifiers cannot contain whitespace; everything else passes
/// through (SIS tolerates brackets and slashes).
std::string blifName(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return out;
}

}  // namespace

std::string writeBlif(const Module& module) {
  const NameTable& names = module.design().names();
  std::ostringstream out;
  out << ".model " << blifName(module.name()) << "\n";

  out << ".inputs";
  for (const Port& p : module.ports()) {
    if (p.dir == PortDir::kInput) {
      out << " " << blifName(names.str(p.name));
    }
  }
  out << "\n.outputs";
  for (const Port& p : module.ports()) {
    if (p.dir != PortDir::kInput) {
      out << " " << blifName(names.str(p.name));
    }
  }
  out << "\n";

  // Constant nets.
  module.forEachNet([&](NetId id) {
    const Net& n = module.net(id);
    if (n.driver.kind == TermKind::kConst0) {
      out << ".names " << blifName(module.netName(id)) << "\n";
    } else if (n.driver.kind == TermKind::kConst1) {
      out << ".names " << blifName(module.netName(id)) << "\n1\n";
    }
  });

  module.forEachCell([&](CellId id) {
    const Cell& c = module.cell(id);
    out << ".subckt " << blifName(names.str(c.type));
    for (const PinConn& pin : c.pins) {
      if (!pin.net.valid()) continue;
      out << " " << names.str(pin.name) << "="
          << blifName(module.netName(pin.net));
    }
    out << "\n";
  });

  // Port aliases for ports whose net carries a different name.
  for (const Port& p : module.ports()) {
    if (!p.net.valid()) continue;
    const Net& n = module.net(p.net);
    if (n.name == p.name) continue;
    if (p.dir == PortDir::kInput) {
      out << ".names " << blifName(names.str(p.name)) << " "
          << blifName(module.netName(p.net)) << "\n1 1\n";
    } else {
      out << ".names " << blifName(module.netName(p.net)) << " "
          << blifName(names.str(p.name)) << "\n1 1\n";
    }
  }

  out << ".end\n";
  return out.str();
}

void writeBlifFile(const Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw NetlistError("cannot open for write: " + path);
  out << writeBlif(design.top());
}

}  // namespace desync::netlist
