#include "flowdb/snapshot.h"

#include <vector>

namespace desync::flowdb {

namespace {

using netlist::BusRef;
using netlist::Cell;
using netlist::CellId;
using netlist::Design;
using netlist::Module;
using netlist::NameId;
using netlist::Net;
using netlist::NetId;
using netlist::PinConn;
using netlist::Port;
using netlist::PortDir;
using netlist::TermKind;
using netlist::TermRef;

constexpr std::uint32_t kNoRef = 0xffffffffu;

/// Assigns dense string-table refs in first-use order while the module
/// bodies are serialized, so the table layout is a pure function of the
/// design state (no dependence on live NameTable id numbering).
class StringTableBuilder {
 public:
  explicit StringTableBuilder(const netlist::NameTable& names)
      : names_(&names), refs_(names.size(), kNoRef) {}

  std::uint32_t ref(NameId id) {
    // NameIds index the live NameTable densely, so a flat vector replaces a
    // hash map on this per-name hot path.
    std::uint32_t& slot = refs_[id.value];
    if (slot == kNoRef) {
      slot = static_cast<std::uint32_t>(strings_.size());
      strings_.push_back(names_->str(id));
    }
    return slot;
  }
  std::uint32_t refOrNone(NameId id) { return id.valid() ? ref(id) : kNoRef; }

  void write(ByteWriter& w) const {
    w.u32(static_cast<std::uint32_t>(strings_.size()));
    for (std::string_view s : strings_) w.str(s);
  }

 private:
  const netlist::NameTable* names_;
  std::vector<std::uint32_t> refs_;  ///< NameId.value -> table ref
  std::vector<std::string_view> strings_;
};

void writeTerm(ByteWriter& w, const TermRef& t) {
  w.u8(static_cast<std::uint8_t>(t.kind));
  w.u32(t.index);
  w.u16(t.pin);
}

TermRef readTerm(ByteReader& r) {
  TermRef t;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(TermKind::kConst1)) {
    throw SnapshotError("snapshot: invalid terminal kind " +
                        std::to_string(kind));
  }
  t.kind = static_cast<TermKind>(kind);
  t.index = r.u32();
  t.pin = r.u16();
  return t;
}

void writeModule(ByteWriter& w, const Module& m, StringTableBuilder& st) {
  w.u32(st.ref(m.nameId()));

  const std::vector<Net>& nets = m.rawNets();
  w.u32(static_cast<std::uint32_t>(nets.size()));
  for (const Net& n : nets) {
    w.u32(st.ref(n.name));
    std::uint8_t flags = 0;
    if (n.valid) flags |= 1;
    if (n.false_path) flags |= 2;
    if (n.bus.valid()) flags |= 4;
    w.u8(flags);
    if (n.bus.valid()) {
      w.u32(st.ref(n.bus.bus));
      w.i32(n.bus.bit);
    }
    writeTerm(w, n.driver);
    w.u32(static_cast<std::uint32_t>(n.sinks.size()));
    for (const TermRef& t : n.sinks) writeTerm(w, t);
  }

  const std::vector<Cell>& cells = m.rawCells();
  w.u32(static_cast<std::uint32_t>(cells.size()));
  for (const Cell& c : cells) {
    w.u32(st.ref(c.name));
    w.u32(st.ref(c.type));
    std::uint8_t flags = 0;
    if (c.valid) flags |= 1;
    if (c.size_only) flags |= 2;
    if (c.dont_touch) flags |= 4;
    w.u8(flags);
    w.u32(static_cast<std::uint32_t>(c.pins.size()));
    for (const PinConn& p : c.pins) {
      w.u32(st.ref(p.name));
      w.u8(static_cast<std::uint8_t>(p.dir));
      w.u32(p.net.value);
    }
  }

  w.u32(static_cast<std::uint32_t>(m.numPorts()));
  for (const Port& p : m.ports()) {
    w.u32(st.ref(p.name));
    w.u8(static_cast<std::uint8_t>(p.dir));
    w.u32(p.net.value);
    w.u8(p.bus.valid() ? 1 : 0);
    if (p.bus.valid()) {
      w.u32(st.ref(p.bus.bus));
      w.i32(p.bus.bit);
    }
  }

  w.u32(m.constNetRaw(false).value);
  w.u32(m.constNetRaw(true).value);
}

PortDir readDir(ByteReader& r) {
  const std::uint8_t d = r.u8();
  if (d > static_cast<std::uint8_t>(PortDir::kInout)) {
    throw SnapshotError("snapshot: invalid port direction " +
                        std::to_string(d));
  }
  return static_cast<PortDir>(d);
}

/// Resolves snapshot string refs to live NameIds (interning on demand).
class StringTable {
 public:
  StringTable(ByteReader& r, netlist::NameTable& names) {
    const std::uint32_t n = r.u32();
    ids_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) ids_.push_back(names.intern(r.str()));
  }

  NameId id(std::uint32_t ref) const {
    if (ref >= ids_.size()) {
      throw SnapshotError("snapshot: string ref " + std::to_string(ref) +
                          " out of range (table has " +
                          std::to_string(ids_.size()) + ")");
    }
    return ids_[ref];
  }
  NameId idOrNone(std::uint32_t ref) const {
    return ref == kNoRef ? NameId{} : id(ref);
  }

 private:
  std::vector<NameId> ids_;
};

Module::RawState readModuleBody(ByteReader& r, const StringTable& st) {
  Module::RawState state;

  const std::uint32_t n_nets = r.u32();
  state.nets.reserve(n_nets);
  for (std::uint32_t i = 0; i < n_nets; ++i) {
    Net n;
    n.name = st.id(r.u32());
    const std::uint8_t flags = r.u8();
    n.valid = (flags & 1) != 0;
    n.false_path = (flags & 2) != 0;
    if ((flags & 4) != 0) {
      n.bus.bus = st.id(r.u32());
      n.bus.bit = r.i32();
    }
    n.driver = readTerm(r);
    const std::uint32_t n_sinks = r.u32();
    n.sinks.reserve(n_sinks);
    for (std::uint32_t s = 0; s < n_sinks; ++s) n.sinks.push_back(readTerm(r));
    state.nets.push_back(std::move(n));
  }

  const std::uint32_t n_cells = r.u32();
  state.cells.reserve(n_cells);
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    Cell c;
    c.name = st.id(r.u32());
    c.type = st.id(r.u32());
    const std::uint8_t flags = r.u8();
    c.valid = (flags & 1) != 0;
    c.size_only = (flags & 2) != 0;
    c.dont_touch = (flags & 4) != 0;
    const std::uint32_t n_pins = r.u32();
    c.pins.reserve(n_pins);
    for (std::uint32_t p = 0; p < n_pins; ++p) {
      PinConn pin;
      pin.name = st.id(r.u32());
      pin.dir = readDir(r);
      pin.net = NetId{r.u32()};
      c.pins.push_back(pin);
    }
    state.cells.push_back(std::move(c));
  }

  const std::uint32_t n_ports = r.u32();
  state.ports.reserve(n_ports);
  for (std::uint32_t i = 0; i < n_ports; ++i) {
    Port p;
    p.name = st.id(r.u32());
    p.dir = readDir(r);
    p.net = NetId{r.u32()};
    if (r.u8() != 0) {
      p.bus.bus = st.id(r.u32());
      p.bus.bit = r.i32();
    }
    state.ports.push_back(std::move(p));
  }

  state.const_nets[0] = NetId{r.u32()};
  state.const_nets[1] = NetId{r.u32()};
  return state;
}

SnapshotMeta readMeta(ByteReader& r) {
  SnapshotMeta meta;
  meta.tool_version = std::string(r.str());
  meta.library = std::string(r.str());
  meta.library_fingerprint = r.u64();
  return meta;
}

}  // namespace

std::string serializeDesign(const Design& design, const SnapshotMeta& meta) {
  // Module bodies are written to a side buffer first: the string table they
  // populate (in first-use order) must precede them in the payload.
  StringTableBuilder strings(design.names());
  ByteWriter body;
  std::uint32_t n_modules = 0;
  design.forEachModule([&](const Module& m) {
    writeModule(body, m, strings);
    ++n_modules;
  });

  ByteWriter payload;
  payload.str(meta.tool_version);
  payload.str(meta.library);
  payload.u64(meta.library_fingerprint);
  strings.write(payload);
  const bool has_top = design.hasTop();
  payload.u8(has_top ? 1 : 0);
  if (has_top) {
    // The top module was serialized above, so its name ref already exists.
    payload.u32(strings.ref(design.top().nameId()));
  }
  payload.u32(n_modules);
  payload.bytesRaw(body.bytes());

  return sealEnvelope(kSnapshotMagic, kSnapshotFormatVersion, payload.bytes());
}

SnapshotMeta peekSnapshotMeta(std::string_view bytes) {
  std::string_view payload;
  try {
    payload = openEnvelope(bytes, kSnapshotMagic, kSnapshotFormatVersion);
  } catch (const FlowDbError& e) {
    throw SnapshotError(e.what());
  }
  ByteReader r(payload);
  return readMeta(r);
}

SnapshotMeta restoreDesign(Design& design, std::string_view bytes) {
  std::string_view payload;
  try {
    payload = openEnvelope(bytes, kSnapshotMagic, kSnapshotFormatVersion);
  } catch (const FlowDbError& e) {
    throw SnapshotError(e.what());
  }
  ByteReader r(payload);
  SnapshotMeta meta = readMeta(r);

  StringTable strings(r, design.names());
  const bool has_top = r.u8() != 0;
  NameId top_name;
  if (has_top) top_name = strings.id(r.u32());
  const std::uint32_t n_modules = r.u32();

  for (std::uint32_t i = 0; i < n_modules; ++i) {
    const NameId mod_name = strings.id(r.u32());
    Module::RawState state = readModuleBody(r, strings);
    std::string_view name_str = design.names().str(mod_name);
    Module* m = design.findModule(name_str);
    if (m == nullptr) m = &design.addModule(name_str);
    m->restoreRawState(std::move(state));
  }
  if (!r.atEnd()) {
    throw SnapshotError("snapshot: trailing bytes after design data");
  }
  if (has_top) design.setTop(design.names().str(top_name));
  return meta;
}

}  // namespace desync::flowdb
