// Byte-stream primitives for the FlowDB persistence layer.
//
// Every FlowDB artifact (design snapshots, cache entries, checkpoints) is a
// flat byte string produced by a ByteWriter and consumed by a ByteReader.
// Multi-byte integers are encoded little-endian *explicitly* (byte shifts,
// not memcpy), so files written on one host read identically on any other;
// doubles travel as their IEEE-754 bit pattern, which makes serialization
// exact — a value restored from a snapshot is bit-identical to the value
// that was saved, a prerequisite for the flow's byte-identical-output
// guarantee.
//
// Artifacts are framed by an *envelope*: an 8-byte magic, a format-version
// word, the payload size, the payload, and a trailing 64-bit checksum over
// everything before it.  openEnvelope() rejects truncation, foreign files,
// unknown format versions and corruption with distinct diagnostics instead
// of reading garbage.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "flowdb/hash.h"

namespace desync::flowdb {

/// Error raised on malformed, truncated or corrupted FlowDB artifacts.
class FlowDbError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A structurally sound artifact written by a different format version.
/// Distinct from corruption: the file is intact, this build just does not
/// read that version.  Callers that degrade to a cold run can count and
/// report the two cases separately (see CacheStats::version_rejected).
class FlowDbVersionError : public FlowDbError {
 public:
  using FlowDbError::FlowDbError;
};

/// Exact (bit-pattern) double <-> u64 conversion for serialization.
inline std::uint64_t bitsOfDouble(double v) {
  return std::bit_cast<std::uint64_t>(v);
}
inline double doubleOfBits(std::uint64_t b) { return std::bit_cast<double>(b); }

/// Append-only little-endian byte-stream builder.
class ByteWriter {
 public:
  // Multi-byte writes stage the shifted bytes in a stack buffer and append
  // once: snapshots are built from millions of these calls, and a per-byte
  // push_back chain dominates serialization time.
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    const char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
    buf_.append(b, 2);
  }
  void u32(std::uint32_t v) {
    const char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                       static_cast<char>(v >> 16),
                       static_cast<char>(v >> 24)};
    buf_.append(b, 4);
  }
  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 8);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(bitsOfDouble(v)); }
  /// Length-prefixed byte string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  /// Raw bytes, no length prefix (envelope framing, pre-framed blobs).
  void bytesRaw(std::string_view s) { buf_.append(s); }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte string; throws FlowDbError on underrun
/// so a truncated artifact can never be silently read past its end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  // Multi-byte reads bounds-check once and assemble with shifts (restore
  // speed matters: a warm cache hit replays megabytes through these).
  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        byteAt(0) | (static_cast<std::uint16_t>(byteAt(1)) << 8));
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(byteAt(i)) << (8 * i);
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(byteAt(i)) << (8 * i);
    pos_ += 8;
    return v;
  }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return doubleOfBits(u64()); }
  [[nodiscard]] std::string_view str() {
    const std::uint32_t n = u32();
    need(n);
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw FlowDbError("flowdb: truncated stream (need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) + ")");
    }
  }
  [[nodiscard]] std::uint8_t byteAt(int i) const {
    return static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]);
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- envelope framing ----------------------------------------------------

inline constexpr std::size_t kMagicSize = 8;
inline constexpr std::size_t kEnvelopeHeaderSize = kMagicSize + 4 + 4;
inline constexpr std::size_t kEnvelopeOverhead = kEnvelopeHeaderSize + 8;

/// Frames `payload`: magic + version + size + payload + fnv64 checksum.
inline std::string sealEnvelope(std::string_view magic, std::uint32_t version,
                                std::string_view payload) {
  ByteWriter w;
  w.bytesRaw(magic);
  w.u32(version);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytesRaw(payload);
  Fnv64 sum;
  sum.update(w.bytes());
  w.u64(sum.digest());
  return w.take();
}

/// Validates the envelope and returns the payload view.  Throws FlowDbError
/// with a distinct diagnostic for: truncation, wrong magic (foreign file),
/// unsupported format version, and checksum mismatch (corruption).
inline std::string_view openEnvelope(std::string_view bytes,
                                     std::string_view magic,
                                     std::uint32_t expected_version) {
  if (bytes.size() < kEnvelopeOverhead) {
    throw FlowDbError("flowdb: truncated file (" +
                      std::to_string(bytes.size()) + " bytes, header needs " +
                      std::to_string(kEnvelopeOverhead) + ")");
  }
  if (bytes.substr(0, kMagicSize) != magic) {
    throw FlowDbError("flowdb: bad magic — not a '" + std::string(magic) +
                      "' file");
  }
  ByteReader head(bytes.substr(kMagicSize));
  const std::uint32_t version = head.u32();
  if (version != expected_version) {
    throw FlowDbVersionError(
        "flowdb: unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(expected_version) +
        ")");
  }
  const std::uint32_t payload_size = head.u32();
  if (bytes.size() != kEnvelopeOverhead + payload_size) {
    throw FlowDbError("flowdb: truncated file (payload declares " +
                      std::to_string(payload_size) + " bytes, file holds " +
                      std::to_string(bytes.size() - kEnvelopeOverhead) + ")");
  }
  Fnv64 sum;
  sum.update(bytes.substr(0, bytes.size() - 8));
  ByteReader tail(bytes.substr(bytes.size() - 8));
  if (tail.u64() != sum.digest()) {
    throw FlowDbError("flowdb: checksum mismatch — file is corrupted");
  }
  return bytes.substr(kEnvelopeHeaderSize, payload_size);
}

}  // namespace desync::flowdb
