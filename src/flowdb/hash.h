// Streaming content hashing for FlowDB.
//
// Two uses: the trailing checksum of every FlowDB artifact (one FNV-64
// stream) and the content-addressed cache keys (two independent FNV-64
// streams -> 128 bits, far below collision range for a pass cache holding
// at most a few thousand entries per design).  The hash is an FNV-1a
// variant that folds eight bytes per multiply: snapshots and cache entries
// are megabytes, and the canonical byte-at-a-time loop's serial multiply
// chain (~150 MB/s) would make warm cache lookups as expensive as the
// passes they skip.  Words are assembled from bytes with explicit
// little-endian shifts, so digests are byte-order independent.  Keys are
// not a security boundary — the cache directory is trusted local state.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace desync::flowdb {

/// Incremental 64-bit hash (word-folding FNV-1a variant).  Digests depend
/// on the sequence of update() calls, not just the concatenated bytes;
/// every producer/consumer pair hashes the same structured call sequence,
/// so this is free determinism-wise and saves a byte-exact streaming
/// buffer.
class Fnv64 {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr explicit Fnv64(std::uint64_t seed = kOffset) : state_(seed) {}

  void update(std::string_view bytes) {
    std::uint64_t h = state_;
    std::size_t i = 0;
    // Eight bytes per multiply; the word is assembled with shifts, never a
    // memcpy of host-endian memory, so the digest is platform-independent.
    for (; i + 8 <= bytes.size(); i += 8) {
      std::uint64_t w = 0;
      for (int b = 0; b < 8; ++b) {
        w |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(bytes[i + b]))
             << (8 * b);
      }
      h ^= w;
      h *= kPrime;
    }
    for (; i < bytes.size(); ++i) {
      h ^= static_cast<std::uint8_t>(bytes[i]);
      h *= kPrime;
    }
    state_ = h;
  }
  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    update(std::string_view(b, 8));
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_;
};

/// 128-bit content-addressed cache key.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const CacheKey& a, const CacheKey& b) {
    return !(a == b);
  }

  /// 32 lowercase hex characters; used as the cache entry file stem.
  [[nodiscard]] std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      out[i] = kDigits[(hi >> (60 - 4 * i)) & 0xf];
      out[16 + i] = kDigits[(lo >> (60 - 4 * i)) & 0xf];
    }
    return out;
  }
};

/// Two-lane streaming hasher producing a CacheKey.  The lanes differ only
/// in their seed, which is sufficient independence for cache addressing.
class KeyHasher {
 public:
  KeyHasher() : a_(Fnv64::kOffset), b_(0x9e3779b97f4a7c15ULL) {}

  void update(std::string_view bytes) {
    a_.update(bytes);
    b_.update(bytes);
  }
  void u64(std::uint64_t v) {
    a_.u64(v);
    b_.u64(v);
  }
  void u32(std::uint32_t v) { u64(v); }
  /// Length-prefixed, so ("ab","c") never collides with ("a","bc").
  void str(std::string_view s) {
    u64(s.size());
    update(s);
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  [[nodiscard]] CacheKey key() const { return CacheKey{a_.digest(), b_.digest()}; }
  /// Chain helper: absorb a previously computed key.
  void absorb(const CacheKey& k) {
    u64(k.hi);
    u64(k.lo);
  }

 private:
  Fnv64 a_;
  Fnv64 b_;
};

}  // namespace desync::flowdb
