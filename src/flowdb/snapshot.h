// FlowDB design snapshots: persistent, versioned netlist state.
//
// A snapshot serializes a complete netlist::Design — every module's full
// net/cell/port slot arrays *including tombstoned slots*, bus membership,
// attributes (false_path, size_only, dont_touch), the lazily-created
// constant nets and the top-module designation — plus the library-binding
// header (library name + content fingerprint) and the tool version that
// produced it.  Preserving dead slots is what keeps NetId/CellId positional
// ids stable across a save/restore, so serialized pass results (region
// membership, enable nets) remain valid against the restored design.
//
// Names are stored as an embedded string table in first-use order, not as
// live NameTable ids: a snapshot can therefore be restored into a design
// whose NameTable grew differently (e.g. a fresh process that only parsed
// the input netlist), with ids remapped by re-interning.  Restoration is
// *exact* at the Verilog level: writeVerilog of a restored design is
// byte-identical to writeVerilog of the design that was saved.
//
// Wire format: an io.h envelope — 8-byte magic "DSYNSNAP", a format-version
// word (kSnapshotFormatVersion), explicit little-endian payload, trailing
// FNV-1a 64 checksum.  Truncated, foreign, version-mismatched or corrupted
// files are rejected with distinct diagnostics (SnapshotError), never read
// as garbage.  The format version participates in FlowDB cache keys, so a
// format change cold-starts stale caches instead of misreading them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "flowdb/io.h"
#include "netlist/netlist.h"

namespace desync::flowdb {

/// Error raised when a snapshot cannot be read or applied.
class SnapshotError : public FlowDbError {
 public:
  using FlowDbError::FlowDbError;
};

/// Version of the snapshot wire format this build reads and writes.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Magic prefix of snapshot files.
inline constexpr std::string_view kSnapshotMagic = "DSYNSNAP";

/// Provenance header carried by every snapshot.
struct SnapshotMeta {
  std::string tool_version;           ///< drdesync version that wrote it
  std::string library;                ///< technology library name
  std::uint64_t library_fingerprint = 0;  ///< liberty::Library::contentHash
};

/// Serializes the whole design (all modules, top designation) with `meta`
/// as provenance.  Deterministic: the same design state always produces the
/// same bytes, at any --jobs setting.
[[nodiscard]] std::string serializeDesign(const netlist::Design& design,
                                          const SnapshotMeta& meta);

/// Validates `bytes` and applies the snapshot to `design`: modules present
/// in the snapshot are replaced slot-exactly (existing Module objects are
/// reused, so Module& references held by callers stay valid), missing ones
/// are created in snapshot order, and the snapshot's top module becomes the
/// design top.  Names are re-interned into the design's NameTable.
/// Returns the snapshot's provenance header.  Throws SnapshotError on any
/// validation failure; the design is only mutated after the envelope and
/// header checks pass.
SnapshotMeta restoreDesign(netlist::Design& design, std::string_view bytes);

/// Reads just the provenance header (envelope-validated, no design
/// mutation).  Throws SnapshotError on invalid input.
[[nodiscard]] SnapshotMeta peekSnapshotMeta(std::string_view bytes);

}  // namespace desync::flowdb
