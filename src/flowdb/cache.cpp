#include "flowdb/cache.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "flowdb/io.h"
#include "trace/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace desync::flowdb {

namespace fs = std::filesystem;

namespace {

// Version 3: the directory additionally carries named slots (per-design ECO
// region tables, see core/eco.h) next to the entry/checkpoint files, and
// readers surface cross-version artifacts with a distinct `version`
// diagnostic instead of folding them into corruption.  Version 2 entry
// payloads opened with the 16-byte cache key they were stored under,
// validated on load (see PassCache::load) — v3 keeps that layout.
constexpr std::uint32_t kCacheFormatVersion = 3;
constexpr std::string_view kEntryMagic = "DSYNCENT";
constexpr std::string_view kCheckpointMagic = "DSYNCCKP";
constexpr std::string_view kCheckpointFile = "checkpoint.ckpt";

std::uint64_t processId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Reads a whole file; std::nullopt when it does not exist or cannot be
/// read.  Sized bulk read — entries are megabytes and a streambuf iterator
/// loop would dominate warm lookups.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamoff size = in.tellg();
  if (size < 0) return std::nullopt;
  std::string data(static_cast<std::size_t>(size), '\0');
  in.seekg(0);
  in.read(data.data(), size);
  if (!in || in.gcount() != size) return std::nullopt;
  return data;
}

}  // namespace

PassCache::PassCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw FlowDbError("cache: cannot create directory '" + dir_ +
                      "': " + ec.message());
  }
}

std::optional<std::string> PassCache::readValidated(const std::string& path,
                                                    std::string_view magic,
                                                    std::string* diag) {
  std::optional<std::string> raw = slurp(path);
  if (!raw.has_value()) {
    ++stats_.misses;
    trace::instant("flowdb_miss", "flowdb");
    return std::nullopt;
  }
  try {
    std::string_view payload = openEnvelope(*raw, magic, kCacheFormatVersion);
    ++stats_.hits;
    stats_.bytes_read += payload.size();
    trace::instant("flowdb_hit", "flowdb");
    return std::string(payload);
  } catch (const FlowDbVersionError& e) {
    if (diag != nullptr) {
      if (!diag->empty()) diag->append("; ");
      diag->append(path).append(": ").append(e.what());
    }
    ++stats_.misses;
    ++stats_.invalid;
    ++stats_.version_rejected;
    trace::instant("flowdb_version_rejected", "flowdb");
    return std::nullopt;
  } catch (const FlowDbError& e) {
    if (diag != nullptr) {
      if (!diag->empty()) diag->append("; ");
      diag->append(path).append(": ").append(e.what());
    }
    ++stats_.misses;
    ++stats_.invalid;
    trace::instant("flowdb_invalid_entry", "flowdb");
    return std::nullopt;
  }
}

bool PassCache::writeAtomic(const std::string& path, std::string_view magic,
                            std::string_view payload) {
  const std::string sealed = sealEnvelope(magic, kCacheFormatVersion, payload);
  // The counter is process-wide, not per-instance: concurrent sessions on
  // the same directory (e.g. drdesyncd requests) each construct their own
  // PassCache, and per-instance counters would collide on the same temp
  // name — one writer's completed temp gets rewritten by another before
  // the rename, publishing a validly-sealed foreign payload under this
  // writer's path.
  static std::atomic<std::uint64_t> temp_counter{0};
  const std::string tmp =
      dir_ + "/.tmp." + std::to_string(processId()) + "." +
      std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(sealed.data(), static_cast<std::streamsize>(sealed.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::string> PassCache::load(const CacheKey& key,
                                           std::string* diag) {
  const std::string path = dir_ + "/" + key.hex() + ".entry";
  std::optional<std::string> raw = slurp(path);
  if (!raw.has_value()) {
    ++stats_.misses;
    trace::instant("flowdb_miss", "flowdb");
    return std::nullopt;
  }
  try {
    std::string_view wrapped =
        openEnvelope(*raw, kEntryMagic, kCacheFormatVersion);
    // Entries open with the key they were stored under; a mismatch means
    // the file holds another key's payload (a copied file, or a write
    // confusion) — the envelope checksum cannot catch that, because the
    // foreign payload is validly sealed.  Restoring it would silently
    // corrupt the flow, so treat it as an invalid entry.
    ByteReader head(wrapped);
    CacheKey stored;
    stored.hi = head.u64();
    stored.lo = head.u64();
    if (stored != key) {
      throw FlowDbError("entry key mismatch: payload was stored under " +
                        stored.hex());
    }
    std::string payload(wrapped.substr(16));
    ++stats_.hits;
    stats_.bytes_read += payload.size();
    trace::instant("flowdb_hit", "flowdb");
    return payload;
  } catch (const FlowDbVersionError& e) {
    // Intact entry from another cache-format version (a cache directory
    // shared across builds after the v2->v3 bump): a distinct diagnostic
    // and counter, not corruption — the flow degrades to a cold run and
    // re-stores in the current format.
    if (diag != nullptr) {
      if (!diag->empty()) diag->append("; ");
      diag->append(path).append(": ").append(e.what());
    }
    ++stats_.misses;
    ++stats_.invalid;
    ++stats_.version_rejected;
    trace::instant("flowdb_version_rejected", "flowdb");
    return std::nullopt;
  } catch (const FlowDbError& e) {
    if (diag != nullptr) {
      if (!diag->empty()) diag->append("; ");
      diag->append(path).append(": ").append(e.what());
    }
    ++stats_.misses;
    ++stats_.invalid;
    trace::instant("flowdb_invalid_entry", "flowdb");
    return std::nullopt;
  }
}

bool PassCache::store(const CacheKey& key, std::string_view payload) {
  ByteWriter w;
  w.u64(key.hi);
  w.u64(key.lo);
  w.bytesRaw(payload);
  const bool ok = writeAtomic(dir_ + "/" + key.hex() + ".entry", kEntryMagic,
                              w.bytes());
  if (ok) stats_.bytes_written += payload.size();
  return ok;
}

std::optional<PassCache::Checkpoint> PassCache::loadCheckpoint(
    std::string* diag) {
  std::optional<std::string> payload =
      readValidated(dir_ + "/" + std::string(kCheckpointFile), kCheckpointMagic,
                    diag);
  if (!payload.has_value()) return std::nullopt;
  try {
    ByteReader r(*payload);
    Checkpoint ck;
    ck.pass_index = r.u32();
    ck.pass_name = std::string(r.str());
    ck.key.hi = r.u64();
    ck.key.lo = r.u64();
    ck.entry = std::string(r.str());
    if (!r.atEnd()) throw FlowDbError("trailing bytes");
    return ck;
  } catch (const FlowDbError& e) {
    if (diag != nullptr) {
      if (!diag->empty()) diag->append("; ");
      diag->append("checkpoint: ").append(e.what());
    }
    return std::nullopt;
  }
}

bool PassCache::storeCheckpoint(std::uint32_t pass_index,
                                std::string_view pass_name,
                                const CacheKey& key, std::string_view entry) {
  ByteWriter w;
  w.u32(pass_index);
  w.str(pass_name);
  w.u64(key.hi);
  w.u64(key.lo);
  w.str(entry);
  return writeAtomic(dir_ + "/" + std::string(kCheckpointFile),
                     kCheckpointMagic, w.bytes());
}

std::optional<std::string> PassCache::loadSlot(std::string_view name,
                                               std::string_view magic,
                                               std::string* diag) {
  return readValidated(dir_ + "/" + std::string(name), magic, diag);
}

bool PassCache::storeSlot(std::string_view name, std::string_view magic,
                          std::string_view payload) {
  return writeAtomic(dir_ + "/" + std::string(name), magic, payload);
}

}  // namespace desync::flowdb
