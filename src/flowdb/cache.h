// Content-addressed pass cache + checkpoint store.
//
// A PassCache maps 128-bit content keys (flowdb::CacheKey, computed by the
// flow from the input snapshot, the library fingerprint, the tool/format
// versions and each pass's relevant options) to opaque entry payloads on
// disk.  Entries are written atomically — the payload is sealed in an
// envelope, written to a process-unique temp file and renamed into place —
// so a killed run can never leave a half-written entry behind; a reader
// either sees the complete previous entry or none.  Loads validate the
// envelope (magic, format version, checksum) and treat any invalid entry
// as a miss with a diagnostic, so corruption degrades to a cold run rather
// than an error.
//
// The same directory holds one well-known *checkpoint* slot, written after
// every completed flow pass and consumed by `drdesync --resume`: it wraps
// the latest entry payload together with the pass index and chain key it
// corresponds to, letting a restarted run jump straight to the last valid
// state instead of probing the cache pass by pass.
//
// Several concurrent runs — threads in one process (drdesyncd requests)
// or separate processes — may share one cache directory: temp names are
// unique per (process, process-wide counter), stores of the same key race
// benignly (both write identical content; rename is atomic and
// last-writer-wins), and stats are per-PassCache-instance.  As defense in
// depth, every entry payload opens with the key it was stored under and
// load() rejects a mismatch as an invalid entry: a validly-sealed payload
// sitting under the wrong file name (a copied file, or a temp-file
// confusion) can therefore never be restored into the wrong flow.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "flowdb/hash.h"

namespace desync::flowdb {

/// Traffic counters for one PassCache instance.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          ///< absent or invalid entries
  std::uint64_t invalid = 0;         ///< subset of misses: present but bad
  std::uint64_t version_rejected = 0;  ///< subset of invalid: intact entry
                                       ///< written by another format version
  std::uint64_t bytes_read = 0;      ///< payload bytes of successful loads
  std::uint64_t bytes_written = 0;   ///< payload bytes of successful stores
};

/// On-disk content-addressed store.  All methods are exception-free except
/// the constructor (directory creation failure throws FlowDbError).
class PassCache {
 public:
  /// Opens (creating if needed) the cache directory.
  explicit PassCache(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Loads the entry for `key`.  Returns the payload, or std::nullopt when
  /// the entry is absent or fails validation (envelope magic/version/
  /// checksum, or the payload's embedded key not matching `key`); in the
  /// invalid case a diagnostic is appended to *diag (when given) and the
  /// entry counts as a miss.
  std::optional<std::string> load(const CacheKey& key,
                                  std::string* diag = nullptr);

  /// Atomically stores `payload` under `key` (write temp + rename).
  /// Returns false (leaving no partial file) on I/O failure.
  bool store(const CacheKey& key, std::string_view payload);

  /// Loads the checkpoint slot: (pass_index, pass_name, key, entry
  /// payload).  std::nullopt when absent/invalid (diagnostic to *diag).
  struct Checkpoint {
    std::uint32_t pass_index = 0;
    std::string pass_name;
    CacheKey key;
    std::string entry;
  };
  std::optional<Checkpoint> loadCheckpoint(std::string* diag = nullptr);

  /// Atomically overwrites the checkpoint slot.
  bool storeCheckpoint(std::uint32_t pass_index, std::string_view pass_name,
                       const CacheKey& key, std::string_view entry);

  /// Loads a named slot (a well-known single file, like the checkpoint but
  /// caller-defined — the ECO region tables live in one such slot per
  /// design).  `name` must be a plain filename; `magic` is the 8-byte
  /// artifact magic the slot was sealed with.  std::nullopt when absent or
  /// invalid (diagnostic to *diag); version rejections are counted
  /// distinctly in stats().version_rejected.
  std::optional<std::string> loadSlot(std::string_view name,
                                      std::string_view magic,
                                      std::string* diag = nullptr);

  /// Atomically overwrites the named slot.
  bool storeSlot(std::string_view name, std::string_view magic,
                 std::string_view payload);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  std::optional<std::string> readValidated(const std::string& path,
                                           std::string_view magic,
                                           std::string* diag);
  bool writeAtomic(const std::string& path, std::string_view magic,
                   std::string_view payload);

  std::string dir_;
  CacheStats stats_;
};

}  // namespace desync::flowdb
