// Synopsys Design Constraints (SDC) subset.
//
// drdesync exports the backend timing constraints as SDC (thesis §4.4-§4.6):
// the master/slave latch-enable clocks replacing the original clock
// definition (Fig 4.2), the set_disable_timing cuts breaking the controller
// timing loops (Fig 4.5) and set_size_only markers keeping resynthesis away
// from the hazard-free controllers.  Reader and writer round-trip this
// subset so the backend stage can consume the constraints from text.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "sta/sta.h"

namespace desync::sta {

class SdcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// create_clock -name N -period P -waveform {rise fall} [get_ports/pins T..]
struct SdcClock {
  std::string name;
  double period_ns = 0.0;
  double rise_at_ns = 0.0;
  double fall_at_ns = 0.0;
  std::vector<std::string> targets;
  bool targets_are_pins = false;  ///< get_pins vs get_ports
};

/// set_max_delay/set_min_delay -from F -to T V
struct SdcPathDelay {
  bool is_max = true;
  double value_ns = 0.0;
  std::string from;
  std::string to;
};

struct SdcFile {
  std::vector<SdcClock> clocks;
  std::vector<DisabledArc> disabled;   ///< set_disable_timing
  std::vector<std::string> size_only;  ///< set_size_only targets
  std::vector<SdcPathDelay> path_delays;

  [[nodiscard]] std::string toText() const;
  static SdcFile parse(const std::string& text);
};

}  // namespace desync::sta
