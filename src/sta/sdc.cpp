#include "sta/sdc.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace desync::sta {

namespace {

/// Splits SDC text into tokens, treating []{} as standalone punctuation.
/// `lines` receives the 1-based source line of each token (for error
/// messages).
std::vector<std::string> tokenize(const std::string& text,
                                  std::vector<int>& lines) {
  std::vector<std::string> tokens;
  std::string cur;
  int line = 1;
  int cur_line = 1;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      lines.push_back(cur_line);
      cur.clear();
    }
  };
  auto punct = [&](const std::string& t) {
    tokens.push_back(t);
    lines.push_back(line);
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      --i;  // reprocess the newline
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '\n') {
      flush();
      if (c == '\n') {
        punct("\n");
        ++line;
      }
      continue;
    }
    if (c == '[' || c == ']' || c == '{' || c == '}') {
      flush();
      punct(std::string(1, c));
      continue;
    }
    if (c == '"') {
      flush();
      cur_line = line;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\n') ++line;
        cur.push_back(text[i++]);
      }
      flush();
      continue;
    }
    if (cur.empty()) cur_line = line;
    cur.push_back(c);
  }
  flush();
  return tokens;
}

}  // namespace

std::string SdcFile::toText() const {
  std::ostringstream out;
  out << "# drdesync generated constraints\n";
  for (const SdcClock& c : clocks) {
    out << "create_clock -name \"" << c.name << "\" -period " << c.period_ns
        << " -waveform {" << c.rise_at_ns << " " << c.fall_at_ns << "} ["
        << (c.targets_are_pins ? "get_pins" : "get_ports") << " {";
    for (std::size_t i = 0; i < c.targets.size(); ++i) {
      if (i > 0) out << " ";
      out << c.targets[i];
    }
    out << "}]\n";
  }
  for (const DisabledArc& d : disabled) {
    out << "set_disable_timing [get_cells {" << d.cell << "}]";
    if (!d.from_pin.empty()) out << " -from " << d.from_pin;
    out << "\n";
  }
  for (const std::string& s : size_only) {
    out << "set_size_only [get_cells {" << s << "}]\n";
  }
  for (const SdcPathDelay& p : path_delays) {
    out << (p.is_max ? "set_max_delay" : "set_min_delay") << " " << p.value_ns
        << " -from " << p.from << " -to " << p.to << "\n";
  }
  return out.str();
}

SdcFile SdcFile::parse(const std::string& text) {
  SdcFile sdc;
  std::vector<int> lines;
  std::vector<std::string> tokens = tokenize(text, lines);
  std::size_t i = 0;

  auto at = [&](std::size_t k) -> const std::string& {
    static const std::string empty;
    return k < tokens.size() ? tokens[k] : empty;
  };
  auto lineOf = [&](std::size_t k) {
    return k < lines.size() ? lines[k] : (lines.empty() ? 1 : lines.back());
  };
  auto expect = [&](const std::string& t) {
    if (at(i) != t) {
      throw SdcError("SDC line " + std::to_string(lineOf(i)) + ": expected '" +
                     t + "' got '" + at(i) + "'");
    }
    ++i;
  };
  // Strict full-token parse: "1.2x" or a bare flag where a number is
  // expected is an error naming the source line, not a silent prefix.
  auto number = [&]() {
    if (i >= tokens.size()) {
      throw SdcError("SDC line " + std::to_string(lineOf(i)) +
                     ": expected number at end of file");
    }
    const std::string& t = tokens[i];
    const char* begin = t.c_str();
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(begin, &end);
    if (t.empty() || t == "\n" || end != begin + t.size() || errno == ERANGE) {
      throw SdcError("SDC line " + std::to_string(lineOf(i)) +
                     ": expected number, got '" + (t == "\n" ? "<eol>" : t) +
                     "'");
    }
    ++i;
    return v;
  };
  /// Parses [get_xxx {a b}] or [get_xxx a]; returns the names and whether
  /// the collection was pins.
  auto collection = [&](bool* is_pins) {
    std::vector<std::string> names;
    expect("[");
    std::string kind = at(i++);
    if (is_pins != nullptr) *is_pins = kind == "get_pins";
    if (at(i) == "{") {
      ++i;
      while (at(i) != "}" && i < tokens.size()) names.push_back(tokens[i++]);
      expect("}");
    } else {
      names.push_back(tokens[i++]);
    }
    expect("]");
    return names;
  };

  while (i < tokens.size()) {
    const std::string& cmd = tokens[i];
    if (cmd == "\n") {
      ++i;
      continue;
    }
    if (cmd == "create_clock") {
      ++i;
      SdcClock clock;
      while (i < tokens.size() && at(i) != "\n") {
        if (at(i) == "-name") {
          ++i;
          clock.name = tokens.at(i++);
        } else if (at(i) == "-period") {
          ++i;
          clock.period_ns = number();
        } else if (at(i) == "-waveform") {
          ++i;
          expect("{");
          clock.rise_at_ns = number();
          clock.fall_at_ns = number();
          expect("}");
        } else if (at(i) == "[") {
          clock.targets = collection(&clock.targets_are_pins);
        } else {
          ++i;
        }
      }
      sdc.clocks.push_back(std::move(clock));
      continue;
    }
    if (cmd == "set_disable_timing") {
      ++i;
      DisabledArc d;
      auto cells = collection(nullptr);
      if (!cells.empty()) d.cell = cells[0];
      if (at(i) == "-from") {
        ++i;
        d.from_pin = tokens.at(i++);
      }
      sdc.disabled.push_back(std::move(d));
      continue;
    }
    if (cmd == "set_size_only") {
      ++i;
      for (const std::string& c : collection(nullptr)) {
        sdc.size_only.push_back(c);
      }
      continue;
    }
    if (cmd == "set_max_delay" || cmd == "set_min_delay") {
      SdcPathDelay p;
      p.is_max = cmd == "set_max_delay";
      ++i;
      p.value_ns = number();
      while (i < tokens.size() && at(i) != "\n") {
        if (at(i) == "-from") {
          ++i;
          p.from = tokens.at(i++);
        } else if (at(i) == "-to") {
          ++i;
          p.to = tokens.at(i++);
        } else {
          ++i;
        }
      }
      sdc.path_delays.push_back(std::move(p));
      continue;
    }
    throw SdcError("SDC line " + std::to_string(lineOf(i)) +
                   ": unknown command: " + cmd);
  }
  return sdc;
}

}  // namespace desync::sta
