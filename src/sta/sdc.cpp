#include "sta/sdc.h"

#include <cctype>
#include <sstream>

namespace desync::sta {

namespace {

/// Splits SDC text into tokens, treating []{} as standalone punctuation.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '\n') {
      flush();
      if (c == '\n') tokens.push_back("\n");
      continue;
    }
    if (c == '[' || c == ']' || c == '{' || c == '}') {
      flush();
      tokens.push_back(std::string(1, c));
      continue;
    }
    if (c == '"') {
      flush();
      ++i;
      while (i < text.size() && text[i] != '"') cur.push_back(text[i++]);
      flush();
      continue;
    }
    cur.push_back(c);
  }
  flush();
  return tokens;
}

}  // namespace

std::string SdcFile::toText() const {
  std::ostringstream out;
  out << "# drdesync generated constraints\n";
  for (const SdcClock& c : clocks) {
    out << "create_clock -name \"" << c.name << "\" -period " << c.period_ns
        << " -waveform {" << c.rise_at_ns << " " << c.fall_at_ns << "} ["
        << (c.targets_are_pins ? "get_pins" : "get_ports") << " {";
    for (std::size_t i = 0; i < c.targets.size(); ++i) {
      if (i > 0) out << " ";
      out << c.targets[i];
    }
    out << "}]\n";
  }
  for (const DisabledArc& d : disabled) {
    out << "set_disable_timing [get_cells {" << d.cell << "}]";
    if (!d.from_pin.empty()) out << " -from " << d.from_pin;
    out << "\n";
  }
  for (const std::string& s : size_only) {
    out << "set_size_only [get_cells {" << s << "}]\n";
  }
  for (const SdcPathDelay& p : path_delays) {
    out << (p.is_max ? "set_max_delay" : "set_min_delay") << " " << p.value_ns
        << " -from " << p.from << " -to " << p.to << "\n";
  }
  return out.str();
}

SdcFile SdcFile::parse(const std::string& text) {
  SdcFile sdc;
  std::vector<std::string> tokens = tokenize(text);
  std::size_t i = 0;

  auto at = [&](std::size_t k) -> const std::string& {
    static const std::string empty;
    return k < tokens.size() ? tokens[k] : empty;
  };
  auto expect = [&](const std::string& t) {
    if (at(i) != t) throw SdcError("expected '" + t + "' got '" + at(i) + "'");
    ++i;
  };
  auto number = [&]() {
    try {
      return std::stod(tokens.at(i++));
    } catch (const std::exception&) {
      throw SdcError("expected number in SDC");
    }
  };
  /// Parses [get_xxx {a b}] or [get_xxx a]; returns the names and whether
  /// the collection was pins.
  auto collection = [&](bool* is_pins) {
    std::vector<std::string> names;
    expect("[");
    std::string kind = at(i++);
    if (is_pins != nullptr) *is_pins = kind == "get_pins";
    if (at(i) == "{") {
      ++i;
      while (at(i) != "}" && i < tokens.size()) names.push_back(tokens[i++]);
      expect("}");
    } else {
      names.push_back(tokens[i++]);
    }
    expect("]");
    return names;
  };

  while (i < tokens.size()) {
    const std::string& cmd = tokens[i];
    if (cmd == "\n") {
      ++i;
      continue;
    }
    if (cmd == "create_clock") {
      ++i;
      SdcClock clock;
      while (i < tokens.size() && at(i) != "\n") {
        if (at(i) == "-name") {
          ++i;
          clock.name = tokens.at(i++);
        } else if (at(i) == "-period") {
          ++i;
          clock.period_ns = number();
        } else if (at(i) == "-waveform") {
          ++i;
          expect("{");
          clock.rise_at_ns = number();
          clock.fall_at_ns = number();
          expect("}");
        } else if (at(i) == "[") {
          clock.targets = collection(&clock.targets_are_pins);
        } else {
          ++i;
        }
      }
      sdc.clocks.push_back(std::move(clock));
      continue;
    }
    if (cmd == "set_disable_timing") {
      ++i;
      DisabledArc d;
      auto cells = collection(nullptr);
      if (!cells.empty()) d.cell = cells[0];
      if (at(i) == "-from") {
        ++i;
        d.from_pin = tokens.at(i++);
      }
      sdc.disabled.push_back(std::move(d));
      continue;
    }
    if (cmd == "set_size_only") {
      ++i;
      for (const std::string& c : collection(nullptr)) {
        sdc.size_only.push_back(c);
      }
      continue;
    }
    if (cmd == "set_max_delay" || cmd == "set_min_delay") {
      SdcPathDelay p;
      p.is_max = cmd == "set_max_delay";
      ++i;
      p.value_ns = number();
      while (i < tokens.size() && at(i) != "\n") {
        if (at(i) == "-from") {
          ++i;
          p.from = tokens.at(i++);
        } else if (at(i) == "-to") {
          ++i;
          p.to = tokens.at(i++);
        } else {
          ++i;
        }
      }
      sdc.path_delays.push_back(std::move(p));
      continue;
    }
    throw SdcError("unknown SDC command: " + cmd);
  }
  return sdc;
}

}  // namespace desync::sta
