#include "sta/sta.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/parallel.h"
#include "trace/trace.h"

namespace desync::sta {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

enum class Unate : std::uint8_t { kPositive, kNegative, kNonUnate };

/// Determines unateness of output w.r.t. variable `v` from the truth table.
Unate unateness(std::uint64_t table, std::size_t n_vars, std::size_t v) {
  bool can_rise = false;   // f goes 0->1 when v goes 0->1 somewhere
  bool can_fall = false;   // f goes 1->0 when v goes 0->1 somewhere
  const std::size_t rows = std::size_t{1} << n_vars;
  for (std::size_t row = 0; row < rows; ++row) {
    if ((row >> v) & 1u) continue;
    const bool f0 = (table >> row) & 1u;
    const bool f1 = (table >> (row | (std::size_t{1} << v))) & 1u;
    if (!f0 && f1) can_rise = true;
    if (f0 && !f1) can_fall = true;
  }
  if (can_rise && can_fall) return Unate::kNonUnate;
  if (can_fall) return Unate::kNegative;
  return Unate::kPositive;
}

}  // namespace

struct Sta::Arc {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  netlist::CellId cell;
  double d_rise = 0.0;  ///< delay when the *output* rises
  double d_fall = 0.0;
  Unate unate = Unate::kPositive;
  bool disabled = false;
};

struct Sta::Endpoint {
  std::uint32_t net = 0;
  double setup = 0.0;
  netlist::CellId cell;   ///< invalid for output ports
  bool is_port = false;
};

Sta::Sta(const netlist::Module& module, const liberty::Gatefile& gatefile,
         StaOptions options)
    : module_(&module),
      owned_bound_(std::make_unique<liberty::BoundModule>(module, gatefile)),
      bound_(owned_bound_.get()),
      options_(std::move(options)) {
  buildGraph();
  breakLoops();
  propagate();
}

Sta::Sta(const liberty::BoundModule& bound, StaOptions options)
    : module_(&bound.module()), bound_(&bound), options_(std::move(options)) {
  buildGraph();
  breakLoops();
  propagate();
}

Sta::~Sta() = default;

void Sta::buildGraph() {
  const netlist::Module& m = *module_;
  const liberty::BoundModule& bound = *bound_;
  const netlist::NameTable& names = m.design().names();

  // Net loads for the linear delay model come precomputed with the binding.
  const std::vector<double>& load = bound.netLoads();

  // Resolve SDC set_disable_timing specs to (cell, lib pin) once, instead
  // of comparing names per cell per arc.  Specs naming absent cells or pins
  // match nothing, as before.
  std::vector<std::uint32_t> disabled_cells;       // whole-cell cuts
  std::vector<std::pair<std::uint32_t, std::uint16_t>> disabled_pins;
  for (const DisabledArc& d : options_.disabled) {
    netlist::CellId cid = m.findCell(d.cell);
    if (!cid.valid()) continue;
    if (d.from_pin.empty()) {
      disabled_cells.push_back(cid.index());
      continue;
    }
    const liberty::BoundType* bt = bound.typeOf(cid);
    if (bt == nullptr) continue;
    const std::size_t j = bt->cell->pinIndex(d.from_pin);
    if (j == liberty::LibCell::npos) continue;
    disabled_pins.emplace_back(cid.index(), static_cast<std::uint16_t>(j));
  }

  // ECO net mask: arcs and endpoints off the mask never enter the graph.
  // The mask is backward-closed by contract (StaOptions::net_mask), so a
  // masked endpoint sees exactly the arcs the full graph would feed it.
  const std::vector<std::uint8_t>* mask = options_.net_mask;
  auto masked = [mask](std::uint32_t net) {
    return mask == nullptr || (*mask)[net] != 0;
  };

  m.forEachCell([&](netlist::CellId cid) {
    const netlist::Cell& cell = m.cell(cid);
    const liberty::BoundType* bt = bound.typeOf(cid);
    if (bt == nullptr) {
      throw StaError("unknown cell type (flatten first?): " +
                     std::string(names.str(cell.type)));
    }
    const bool cell_disabled =
        std::find(disabled_cells.begin(), disabled_cells.end(),
                  cid.index()) != disabled_cells.end();

    if (bt->kind == liberty::CellKind::kCombinational) {
      for (const liberty::BoundOutput& o : bt->outputs) {
        netlist::NetId out_net = bound.pinNet(cid, o.pin);
        if (!out_net.valid() || !masked(out_net.value)) continue;
        const double cap = load[out_net.value];
        const liberty::LibPin& out = bt->cell->pins[o.pin];
        for (std::size_t v = 0; v < o.inputs.size(); ++v) {
          netlist::NetId in_net = bound.pinNet(cid, o.inputs[v]);
          if (!in_net.valid() || !masked(in_net.value)) continue;
          bool pin_disabled = cell_disabled;
          if (!pin_disabled) {
            for (const auto& [dc, dp] : disabled_pins) {
              if (dc == cid.index() && dp == o.inputs[v]) {
                pin_disabled = true;
                break;
              }
            }
          }
          // Delay from the arc matching this related pin (resolved at bind
          // time; fallback: worst arc of the output).
          double dr = 0.0, df = 0.0;
          if (const liberty::TimingArc* a = o.input_arcs[v]) {
            dr = a->intrinsic_rise + a->rise_resistance * cap;
            df = a->intrinsic_fall + a->fall_resistance * cap;
          } else {
            for (const liberty::TimingArc& a : out.arcs) {
              dr = std::max(dr, a.intrinsic_rise + a.rise_resistance * cap);
              df = std::max(df, a.intrinsic_fall + a.fall_resistance * cap);
            }
          }
          double scale = options_.delay_scale;
          if (options_.cell_scale) {
            scale *= options_.cell_scale(names.str(cell.name));
          }
          Arc arc;
          arc.from = in_net.value;
          arc.to = out_net.value;
          arc.cell = cid;
          arc.d_rise = dr * scale;
          arc.d_fall = df * scale;
          arc.unate = unateness(o.table, o.inputs.size(), v);
          arc.disabled = pin_disabled;
          arcs_.push_back(arc);
        }
      }
      return;
    }

    // Sequential cell: data-ish inputs are endpoints with setup; outputs are
    // startpoints (handled in propagate()).
    if (bt->seq == nullptr) return;
    auto addEndpoint = [&](std::int16_t lib_pin) {
      if (lib_pin < 0) return;
      netlist::NetId net = bound.rolePinNet(cid, lib_pin);
      if (!net.valid() || !masked(net.value)) return;
      double setup = 0.0;
      const liberty::LibPin& lp =
          bt->cell->pins[static_cast<std::size_t>(lib_pin)];
      for (const liberty::TimingArc& a : lp.arcs) {
        if (a.type == liberty::ArcType::kSetup) {
          setup = std::max(setup,
                           std::max(a.intrinsic_rise, a.intrinsic_fall));
        }
      }
      Endpoint e;
      e.net = net.value;
      e.setup = setup * options_.delay_scale;
      e.cell = cid;
      endpoints_.push_back(e);
    };
    addEndpoint(bt->seq_pins.data);
    addEndpoint(bt->seq_pins.scan_in);
    addEndpoint(bt->seq_pins.scan_en);
    addEndpoint(bt->seq_pins.sync);
  });

  // Output ports are endpoints too.
  for (const netlist::Port& p : m.ports()) {
    if (p.dir != netlist::PortDir::kInput && p.net.valid() &&
        masked(p.net.value)) {
      Endpoint e;
      e.net = p.net.value;
      e.is_port = true;
      endpoints_.push_back(e);
    }
  }
}

void Sta::breakLoops() {
  const netlist::Module& m = *module_;
  const netlist::NameTable& names = m.design().names();
  // Adjacency over enabled arcs.
  std::vector<std::vector<std::uint32_t>> out(m.netCapacity());
  for (std::uint32_t i = 0; i < arcs_.size(); ++i) {
    if (!arcs_[i].disabled) out[arcs_[i].from].push_back(i);
  }
  // Iterative DFS; arcs to nodes on the current stack are back edges.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(m.netCapacity(), kWhite);
  struct Frame {
    std::uint32_t net;
    std::size_t next = 0;
  };
  for (std::uint32_t root = 0; root < m.netCapacity(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next >= out[f.net].size()) {
        color[f.net] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::uint32_t arc_idx = out[f.net][f.next++];
      Arc& arc = arcs_[arc_idx];
      if (arc.disabled) continue;
      if (color[arc.to] == kGray) {
        if (!options_.auto_break_loops) {
          throw StaError("timing loop through cell " +
                         std::string(names.str(m.cell(arc.cell).name)));
        }
        arc.disabled = true;
        broken_.push_back(BrokenArc{
            std::string(names.str(m.cell(arc.cell).name)),
            std::string(m.netName(netlist::NetId{arc.from})),
            std::string(m.netName(netlist::NetId{arc.to}))});
        continue;
      }
      if (color[arc.to] == kWhite) {
        color[arc.to] = kGray;
        stack.push_back(Frame{arc.to, 0});
      }
    }
  }
}

void Sta::propagate() {
  const netlist::Module& m = *module_;
  const liberty::BoundModule& bound = *bound_;
  const netlist::NameTable& names = m.design().names();

  arr_rise_.assign(m.netCapacity(), kNegInf);
  arr_fall_.assign(m.netCapacity(), kNegInf);
  pred_rise_.assign(m.netCapacity(), -1);
  pred_fall_.assign(m.netCapacity(), -1);

  // Startpoints: input ports at 0, sequential outputs at their clk->q.
  for (const netlist::Port& p : m.ports()) {
    if (p.dir == netlist::PortDir::kInput && p.net.valid()) {
      arr_rise_[p.net.value] = 0.0;
      arr_fall_[p.net.value] = 0.0;
    }
  }
  m.forEachCell([&](netlist::CellId cid) {
    const liberty::BoundType* bt = bound.typeOf(cid);
    if (bt == nullptr || bt->kind == liberty::CellKind::kCombinational) {
      return;
    }
    for (std::uint16_t j : bt->output_pins) {
      netlist::NetId net = bound.pinNet(cid, j);
      if (!net.valid()) continue;
      const liberty::LibPin& p = bt->cell->pins[j];
      double cq = 0.0;
      for (const liberty::TimingArc& a : p.arcs) {
        if (a.type == liberty::ArcType::kClockToQ) {
          cq = std::max(cq, std::max(a.intrinsic_rise, a.intrinsic_fall));
        }
      }
      cq *= options_.delay_scale;
      if (options_.cell_scale) {
        cq *= options_.cell_scale(names.str(m.cell(cid).name));
      }
      arr_rise_[net.value] = std::max(arr_rise_[net.value], cq);
      arr_fall_[net.value] = std::max(arr_fall_[net.value], cq);
    }
  });
  // Constant nets launch at 0 (they never switch; harmless).
  m.forEachNet([&](netlist::NetId id) {
    if (m.net(id).driver.isConst()) {
      arr_rise_[id.value] = 0.0;
      arr_fall_[id.value] = 0.0;
    }
  });

  // Kahn topological order over enabled arcs.
  std::vector<std::uint32_t> indeg(m.netCapacity(), 0);
  std::vector<std::vector<std::uint32_t>> out(m.netCapacity());
  for (std::uint32_t i = 0; i < arcs_.size(); ++i) {
    if (arcs_[i].disabled) continue;
    out[arcs_[i].from].push_back(i);
    ++indeg[arcs_[i].to];
  }
  std::deque<std::uint32_t> ready;
  for (std::uint32_t n = 0; n < m.netCapacity(); ++n) {
    if (indeg[n] == 0) ready.push_back(n);
  }
  auto relax = [&](std::uint32_t arc_idx) {
    const Arc& a = arcs_[arc_idx];
    // Output rise comes from input rise (positive), input fall (negative)
    // or either (non-unate).
    double rise_src = kNegInf, fall_src = kNegInf;
    switch (a.unate) {
      case Unate::kPositive:
        rise_src = arr_rise_[a.from];
        fall_src = arr_fall_[a.from];
        break;
      case Unate::kNegative:
        rise_src = arr_fall_[a.from];
        fall_src = arr_rise_[a.from];
        break;
      case Unate::kNonUnate:
        rise_src = std::max(arr_rise_[a.from], arr_fall_[a.from]);
        fall_src = rise_src;
        break;
    }
    if (rise_src > kNegInf && rise_src + a.d_rise > arr_rise_[a.to]) {
      arr_rise_[a.to] = rise_src + a.d_rise;
      pred_rise_[a.to] = static_cast<std::int32_t>(arc_idx);
    }
    if (fall_src > kNegInf && fall_src + a.d_fall > arr_fall_[a.to]) {
      arr_fall_[a.to] = fall_src + a.d_fall;
      pred_fall_[a.to] = static_cast<std::int32_t>(arc_idx);
    }
  };
  while (!ready.empty()) {
    std::uint32_t n = ready.front();
    ready.pop_front();
    for (std::uint32_t arc_idx : out[n]) {
      relax(arc_idx);
      if (--indeg[arcs_[arc_idx].to] == 0) {
        ready.push_back(arcs_[arc_idx].to);
      }
    }
  }

  // Worst endpoint.
  worst_ = 0.0;
  for (const Endpoint& e : endpoints_) {
    for (bool rise : {true, false}) {
      double a = (rise ? arr_rise_ : arr_fall_)[e.net];
      if (a == kNegInf) continue;
      if (a + e.setup > worst_) {
        worst_ = a + e.setup;
        worst_net_ = e.net;
        worst_rise_ = rise;
      }
    }
  }
}

double Sta::criticalPathNs() const { return worst_; }

std::vector<PathStep> Sta::criticalPath() const {
  const netlist::Module& m = *module_;
  const netlist::NameTable& names = m.design().names();
  std::vector<PathStep> path;
  std::uint32_t net = worst_net_;
  bool rise = worst_rise_;
  int guard = 0;
  for (;;) {
    if (++guard > 100000) break;
    PathStep step;
    step.net = std::string(m.netName(netlist::NetId{net}));
    step.arrival_ns = (rise ? arr_rise_ : arr_fall_)[net];
    step.rising = rise;
    std::int32_t p = (rise ? pred_rise_ : pred_fall_)[net];
    if (p < 0) {
      path.push_back(step);
      break;
    }
    const Arc& a = arcs_[static_cast<std::size_t>(p)];
    step.through_cell = std::string(names.str(m.cell(a.cell).name));
    path.push_back(step);
    net = a.from;
    switch (a.unate) {
      case Unate::kPositive:
        break;
      case Unate::kNegative:
        rise = !rise;
        break;
      case Unate::kNonUnate:
        rise = arr_rise_[a.from] >= arr_fall_[a.from];
        break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<double> Sta::combDelayToSeq(std::string_view cell) const {
  const netlist::Module& m = *module_;
  netlist::CellId cid = m.findCell(cell);
  if (!cid.valid()) return std::nullopt;
  double worst = kNegInf;
  for (const Endpoint& e : endpoints_) {
    if (!(e.cell == cid)) continue;
    for (const auto* arr : {&arr_rise_, &arr_fall_}) {
      double a = (*arr)[e.net];
      if (a > kNegInf) worst = std::max(worst, a + e.setup);
    }
  }
  if (worst == kNegInf) return std::nullopt;
  return worst;
}

std::optional<double> Sta::arrivalNs(std::string_view net) const {
  netlist::NetId id = module_->findNet(net);
  if (!id.valid()) return std::nullopt;
  double a = std::max(arr_rise_[id.value], arr_fall_[id.value]);
  if (a == kNegInf) return std::nullopt;
  return a;
}

std::optional<double> Sta::portToPortNs(std::string_view from,
                                        std::string_view to,
                                        bool rising_out) const {
  const netlist::Module& m = *module_;
  netlist::PortId from_port = m.findPort(from);
  netlist::PortId to_port = m.findPort(to);
  if (!from_port.valid() || !to_port.valid()) return std::nullopt;
  return netToNetNs(m.netName(m.port(from_port).net),
                    m.netName(m.port(to_port).net), rising_out);
}

std::optional<double> Sta::netToNetNs(std::string_view from,
                                      std::string_view to,
                                      bool rising_out) const {
  const netlist::Module& m = *module_;
  netlist::NetId from_net = m.findNet(from);
  netlist::NetId to_net = m.findNet(to);
  if (!from_net.valid() || !to_net.valid()) return std::nullopt;
  const std::uint32_t src = from_net.value;
  const std::uint32_t dst = to_net.value;

  // Dedicated propagation from the single source.
  std::vector<double> rise(m.netCapacity(), kNegInf);
  std::vector<double> fall(m.netCapacity(), kNegInf);
  rise[src] = fall[src] = 0.0;
  // Constants known (select pins etc. launch nothing).
  std::vector<std::uint32_t> indeg(m.netCapacity(), 0);
  std::vector<std::vector<std::uint32_t>> out(m.netCapacity());
  for (std::uint32_t i = 0; i < arcs_.size(); ++i) {
    if (arcs_[i].disabled) continue;
    out[arcs_[i].from].push_back(i);
    ++indeg[arcs_[i].to];
  }
  std::deque<std::uint32_t> ready;
  for (std::uint32_t n = 0; n < m.netCapacity(); ++n) {
    if (indeg[n] == 0) ready.push_back(n);
  }
  while (!ready.empty()) {
    std::uint32_t n = ready.front();
    ready.pop_front();
    for (std::uint32_t ai : out[n]) {
      const Arc& a = arcs_[ai];
      double rs = kNegInf, fs = kNegInf;
      switch (a.unate) {
        case Unate::kPositive:
          rs = rise[a.from];
          fs = fall[a.from];
          break;
        case Unate::kNegative:
          rs = fall[a.from];
          fs = rise[a.from];
          break;
        case Unate::kNonUnate:
          rs = fs = std::max(rise[a.from], fall[a.from]);
          break;
      }
      if (rs > kNegInf) rise[a.to] = std::max(rise[a.to], rs + a.d_rise);
      if (fs > kNegInf) fall[a.to] = std::max(fall[a.to], fs + a.d_fall);
      if (--indeg[a.to] == 0) ready.push_back(a.to);
    }
  }
  double result = rising_out ? rise[dst] : fall[dst];
  if (result == kNegInf) return std::nullopt;
  return result;
}

double Sta::worstSetupSlackNs(double period_ns) const {
  return period_ns - worst_;
}

double Sta::minPeriodNs() const { return worst_; }

std::vector<Sta::EndpointWorst> Sta::endpointWorsts() const {
  std::vector<EndpointWorst> out;
  out.reserve(endpoints_.size());
  for (const Endpoint& e : endpoints_) {
    const double a = std::max(arr_rise_[e.net], arr_fall_[e.net]);
    if (a == kNegInf) continue;
    out.push_back(EndpointWorst{e.cell, e.net, e.is_port, a + e.setup});
  }
  return out;
}

std::vector<double> Sta::regionWorstDelays(
    const std::vector<std::vector<netlist::CellId>>& region_cells,
    std::string_view seq_suffix) const {
  const netlist::Module& m = *module_;
  std::vector<double> worst(region_cells.size(), 0.0);
  // Per-cell endpoint index: endpoints_ is built in forEachCell slot order
  // (ports appended last), but sort defensively so the per-cell lookup is
  // a binary search instead of a full endpoint scan per latch.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_cell;
  by_cell.reserve(endpoints_.size());
  for (std::uint32_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i].is_port || !endpoints_[i].cell.valid()) continue;
    by_cell.emplace_back(endpoints_[i].cell.index(), i);
  }
  std::sort(by_cell.begin(), by_cell.end());
  // Each region reads only the propagated arrival arrays (const) and
  // writes its own slot; max() is order-independent, so the result does
  // not depend on scheduling.
  core::parallelFor(region_cells.size(), [&](std::size_t g) {
    trace::Span span("sta_region", "sta");
    double w = 0.0;
    for (netlist::CellId cid : region_cells[g]) {
      const std::string_view name = m.cellName(cid);
      if (name.size() < seq_suffix.size() ||
          name.substr(name.size() - seq_suffix.size()) != seq_suffix) {
        continue;
      }
      auto it = std::lower_bound(
          by_cell.begin(), by_cell.end(),
          std::make_pair(cid.index(), std::uint32_t{0}));
      for (; it != by_cell.end() && it->first == cid.index(); ++it) {
        const Endpoint& e = endpoints_[it->second];
        for (const auto* arr : {&arr_rise_, &arr_fall_}) {
          const double a = (*arr)[e.net];
          if (a > kNegInf) w = std::max(w, a + e.setup);
        }
      }
    }
    worst[g] = w;
  });
  return worst;
}

std::vector<std::unique_ptr<Sta>> analyzeCorners(
    const liberty::BoundModule& bound, std::vector<StaOptions> options) {
  std::vector<std::unique_ptr<Sta>> out(options.size());
  core::parallelFor(options.size(), [&](std::size_t i) {
    trace::Span span("sta_corner", "sta");
    out[i] = std::make_unique<Sta>(bound, std::move(options[i]));
  });
  return out;
}

}  // namespace desync::sta
