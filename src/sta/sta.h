// Static Timing Analysis engine.
//
// Plays the PrimeTime role in the flow: levelizes the combinational timing
// graph of a flat netlist, propagates rise/fall arrival times with the
// Liberty linear delay model and reports critical paths.  Two features the
// desynchronization flow depends on (thesis §3.2.5, §4.6):
//
//  * per-endpoint combinational delays — drdesync sizes each region's
//    matched delay element from the worst path into the region's
//    sequential elements;
//  * timing loop breaking — the controller network is cyclic; cycles are
//    cut either by user-specified disabled arcs (SDC set_disable_timing,
//    the hand-placed cuts of Fig 4.5) or automatically at back edges, and
//    the list of cuts is reported so the flow can check they are the
//    intended ones.
//
// Arc unateness is derived from the cell truth table, so asymmetric delay
// elements characterize correctly (rise propagates through the whole AND
// chain, fall through one stage).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/bound.h"
#include "liberty/gatefile.h"
#include "netlist/netlist.h"

namespace desync::sta {

class StaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A disabled timing arc: all arcs through `cell` (empty pin) or only those
/// from input pin `from_pin`.
struct DisabledArc {
  std::string cell;
  std::string from_pin;  ///< empty: every arc through the cell
};

struct StaOptions {
  double delay_scale = 1.0;          ///< PVT corner multiplier
  std::vector<DisabledArc> disabled; ///< user cuts (SDC set_disable_timing)
  bool auto_break_loops = true;      ///< cut remaining cycles at back edges
  /// Per-instance delay multiplier (intra-die variation for SSTA-style
  /// Monte-Carlo analysis), keyed by cell name; unset = 1.0 everywhere.
  std::function<double(std::string_view)> cell_scale;
  /// ECO masking (core/eco.h): when set (sized >= netCapacity, nonzero =
  /// in mask), only combinational arcs with both nets in the mask and only
  /// endpoints on masked nets enter the graph.  The caller must pass a
  /// *backward-closed* mask (every net with an arc into a masked net is
  /// itself masked) so arrivals at masked endpoints equal the unmasked
  /// run's bit for bit; the mask must outlive the Sta.
  const std::vector<std::uint8_t>* net_mask = nullptr;
};

/// One step of a reported path.
struct PathStep {
  std::string net;
  std::string through_cell;  ///< driver cell ("" for startpoints)
  double arrival_ns = 0.0;
  bool rising = true;
};

/// An automatically cut arc (for loop-break reporting).
struct BrokenArc {
  std::string cell;
  std::string from_net;
  std::string to_net;
};

class Sta {
 public:
  /// Builds the timing graph.  `module` must be flat.  Binds the module
  /// internally; prefer the BoundModule overload when several passes share
  /// one binding.
  Sta(const netlist::Module& module, const liberty::Gatefile& gatefile,
      StaOptions options = {});

  /// Builds the timing graph from an existing binding (no per-cell string
  /// lookups).  `bound` must outlive the Sta and stay in sync with the
  /// module (no netlist mutation in between).
  explicit Sta(const liberty::BoundModule& bound, StaOptions options = {});
  ~Sta();  // out of line: members hold vectors of private incomplete types
  Sta(const Sta&) = delete;
  Sta& operator=(const Sta&) = delete;

  /// Worst combinational arrival over every timing endpoint (sequential
  /// data/control inputs and output ports), launches at t=0 from sequential
  /// outputs and input ports.
  [[nodiscard]] double criticalPathNs() const;

  /// Critical path trace (endpoint backwards to startpoint, reversed).
  [[nodiscard]] std::vector<PathStep> criticalPath() const;

  /// Worst combinational arrival at any sequential data input of `cell`
  /// (a flip-flop or latch); nullopt when the cell has no timed data input.
  [[nodiscard]] std::optional<double> combDelayToSeq(
      std::string_view cell) const;

  /// Worst arrival at a specific net (rise/fall max); nullopt if the net is
  /// unreached.
  [[nodiscard]] std::optional<double> arrivalNs(std::string_view net) const;

  /// Pin-to-pin query used for delay-element characterization: worst path
  /// delay from input port `from` to output port `to`, for the given output
  /// edge.  nullopt when no path exists.
  [[nodiscard]] std::optional<double> portToPortNs(std::string_view from,
                                                   std::string_view to,
                                                   bool rising_out) const;

  /// Worst path delay between two arbitrary nets (single-source
  /// propagation); used to measure the in-place delay elements of a
  /// desynchronized netlist for SSTA margin analysis.
  [[nodiscard]] std::optional<double> netToNetNs(std::string_view from,
                                                 std::string_view to,
                                                 bool rising_out) const;

  /// Arcs cut automatically to make the graph acyclic.
  [[nodiscard]] const std::vector<BrokenArc>& brokenArcs() const {
    return broken_;
  }

  /// Setup slack for a clock period: min over sequential endpoints of
  /// (period - clk_to_q - comb_arrival - setup).  Input-port launches are
  /// treated as clk_to_q = 0.
  [[nodiscard]] double worstSetupSlackNs(double period_ns) const;

  /// Smallest period with non-negative setup slack.
  [[nodiscard]] double minPeriodNs() const;

  /// One timing endpoint with its worst (arrival + setup) contribution to
  /// the min period; endpoints no path reaches are skipped.  Cell
  /// endpoints carry the sequential cell, port endpoints its net (the
  /// caller maps nets back to port names).  Used by the ECO layer to
  /// persist per-endpoint contributions so a warm run can take the max of
  /// restored and recomputed values.
  struct EndpointWorst {
    netlist::CellId cell;      ///< invalid for output-port endpoints
    std::uint32_t net = 0;
    bool is_port = false;
    double worst = 0.0;        ///< arrival + setup, in ns
  };
  [[nodiscard]] std::vector<EndpointWorst> endpointWorsts() const;

  /// Worst combinational arrival into the master latches (cells whose name
  /// ends in `seq_suffix`) of each listed region, index-aligned with
  /// `region_cells`.  Entries stay 0 for regions without timed paths.  The
  /// queries are independent per region and run concurrently on the
  /// parallel layer (core/parallel.h); the result is identical at any
  /// --jobs setting.
  [[nodiscard]] std::vector<double> regionWorstDelays(
      const std::vector<std::vector<netlist::CellId>>& region_cells,
      std::string_view seq_suffix) const;

 private:
  struct Arc;
  struct Endpoint;
  void buildGraph();
  void breakLoops();
  void propagate();

  const netlist::Module* module_;
  std::unique_ptr<liberty::BoundModule> owned_bound_;  // string-ctor only
  const liberty::BoundModule* bound_;
  StaOptions options_;

  // Arrival times per net slot (rise/fall), -inf when unreachable.
  std::vector<double> arr_rise_, arr_fall_;
  std::vector<std::int32_t> pred_rise_, pred_fall_;  // arc index or -1
  std::vector<Arc> arcs_;
  std::vector<Endpoint> endpoints_;
  std::vector<BrokenArc> broken_;
  double worst_ = 0.0;
  std::uint32_t worst_net_ = 0;
  bool worst_rise_ = true;
};

/// Multi-corner analysis: builds one Sta per options entry (e.g. the
/// best/typical/worst PVT corners, or one Monte-Carlo die each) over the
/// shared read-only binding.  The constructions are independent and run
/// concurrently on the parallel layer; the returned analyses are
/// index-aligned with `options`, so any report merged in index order is
/// byte-identical to a serial (--jobs 1) run.  `bound` must outlive the
/// returned analyses.
[[nodiscard]] std::vector<std::unique_ptr<Sta>> analyzeCorners(
    const liberty::BoundModule& bound, std::vector<StaOptions> options);

}  // namespace desync::sta
