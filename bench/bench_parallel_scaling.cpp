// Parallel-layer scaling: serial vs parallel wall time for the three
// workloads wired onto core/parallel.h, plus a determinism cross-check.
//
//   1. Monte-Carlo SSTA die samples (one STA per die, shared binding);
//   2. multi-corner STA (one Sta per corner via sta::analyzeCorners);
//   3. flow-equivalence vector batches (one simulator pair per batch).
//
// Each workload runs twice — --jobs 1, then the parallel worker count —
// and the bench FAILS (exit 1) unless the two result sets are identical:
// this is the byte-identical determinism contract, checked on real data.
// Speedups are wall-clock and therefore *not* deterministic; they go to
// stdout for a human and to BENCH_parallel_scaling.json for CI.  On a
// single-core host the speedup hovers around 1.0 (the contract still
// holds); the >=2x target applies to 4+-core machines.
#include <sstream>

#include "harness.h"

using namespace bench;

namespace {

/// Serial vs parallel legs of one workload: runs `fn` under both jobs
/// settings, returns {serial_min_ms, parallel_min_ms} and the two result
/// strings for the determinism check.
struct Leg {
  double serial_min_ms = 0;
  double parallel_min_ms = 0;
  std::string serial_result;
  std::string parallel_result;
  [[nodiscard]] double speedup() const {
    return parallel_min_ms > 0 ? serial_min_ms / parallel_min_ms : 0;
  }
  [[nodiscard]] bool deterministic() const {
    return serial_result == parallel_result;
  }
};

template <typename Fn>
Leg runLeg(int par_jobs, int repeats, Fn&& fn) {
  Leg leg;
  core::setThreadJobs(1);
  leg.serial_min_ms =
      measureRepeated(repeats, [&] { leg.serial_result = fn(); }).min_ms;
  core::setThreadJobs(par_jobs);
  leg.parallel_min_ms =
      measureRepeated(repeats, [&] { leg.parallel_result = fn(); }).min_ms;
  core::setThreadJobs(0);  // back to the env/hardware default
  return leg;
}

}  // namespace

int main() {
  header("Parallel scaling: SSTA / multi-corner STA / FE batches");

  // The parallel leg uses the configured worker count, but never less than
  // 4 so the pool is exercised even where hardware_concurrency() is 1.
  const int par_jobs = std::max(core::effectiveJobs(), 4);
  const int repeats = benchRepeats(2);
  row("  parallel jobs: %d; repeats per leg: %d", par_jobs, repeats);

  DlxPair pair = makeDlxPair(/*mux_taps=*/8);
  const lib::Gatefile& gf = *pair.gf;
  nl::Module& m = pair.desyncModule();
  const lib::BoundModule bound(m, gf);
  const double sync_min = pair.report.sync_min_period_ns;

  // 1. Monte-Carlo SSTA: per-die STA over the shared binding.
  constexpr std::size_t kSamples = 24;
  const var::VariationModel model = var::makeSpanModel(11);
  Leg ssta = runLeg(par_jobs, repeats, [&] {
    std::vector<double> periods(kSamples);
    var::forEachSample(model, kSamples,
                       [&](std::size_t s, const var::ChipSample& chip) {
                         sta::StaOptions so;
                         so.disabled = pair.report.sdc.disabled;
                         so.delay_scale = chip.global;
                         so.cell_scale = chip.cell_factor;
                         periods[s] = sta::Sta(bound, so).minPeriodNs();
                       });
    std::ostringstream os;
    os.precision(9);
    for (double p : periods) os << p << ";";
    return os.str();
  });

  // 2. Multi-corner STA: one Sta per delay scale over the shared binding.
  Leg corners = runLeg(par_jobs, repeats, [&] {
    std::vector<sta::StaOptions> options;
    for (double scale : {0.72, 0.85, 1.0, 1.1, 1.2, 1.3, 1.45, 1.6}) {
      sta::StaOptions so;
      so.disabled = pair.report.sdc.disabled;
      so.delay_scale = scale;
      options.push_back(std::move(so));
    }
    auto analyses = sta::analyzeCorners(bound, std::move(options));
    std::ostringstream os;
    os.precision(9);
    for (const auto& a : analyses) os << a->minPeriodNs() << ";";
    return os.str();
  });

  // 3. Flow-equivalence batches: one sync/desync simulator pair per batch
  // (batch = calibration selection), merged in batch order.
  Leg fe = runLeg(par_jobs, repeats, [&] {
    sim::FlowEqBatchReport report = sim::checkFlowEquivalenceBatches(
        4,
        [&](std::size_t) {
          return runSync(pair.syncModule(), gf, sync_min * 2, 30);
        },
        [&](std::size_t b) {
          return runDesync(pair.desyncModule(), gf, 45 * sync_min,
                           static_cast<int>(4 + b))
              .sim;
        });
    std::ostringstream os;
    os << report.equivalent << "/" << report.batches_run << "/"
       << report.elements_compared << "/" << report.values_compared << "/"
       << report.mismatches;
    return os.str();
  });

  row("  %-22s %12s %12s %9s %6s", "workload", "jobs=1 (ms)",
      "jobs=N (ms)", "speedup", "same?");
  const struct {
    const char* name;
    const Leg* leg;
  } rows[] = {{"ssta_monte_carlo", &ssta},
              {"multi_corner_sta", &corners},
              {"flow_eq_batches", &fe}};
  bool all_deterministic = true;
  for (const auto& r : rows) {
    row("  %-22s %12.2f %12.2f %8.2fx %6s", r.name, r.leg->serial_min_ms,
        r.leg->parallel_min_ms, r.leg->speedup(),
        r.leg->deterministic() ? "yes" : "NO");
    all_deterministic = all_deterministic && r.leg->deterministic();
  }
  if (!all_deterministic) {
    row("\n  DETERMINISM MISMATCH: parallel results differ from --jobs 1");
    return 1;
  }
  row("\n  all workloads byte-identical at jobs=1 and jobs=%d", par_jobs);

  // One JSON per workload so CI tracks each trajectory separately.
  auto record = [&](const char* name, const Leg& leg) {
    RepeatedTiming t;
    t.runs_ms = {leg.serial_min_ms, leg.parallel_min_ms};
    t.min_ms = std::min(leg.serial_min_ms, leg.parallel_min_ms);
    t.median_ms = leg.parallel_min_ms;
    writeBenchJson(std::string("parallel_scaling_") + name, t,
                   {{"par_jobs", static_cast<double>(par_jobs)},
                    {"serial_min_ms", leg.serial_min_ms},
                    {"parallel_min_ms", leg.parallel_min_ms},
                    {"speedup", leg.speedup()}});
  };
  record("ssta", ssta);
  record("sta_corners", corners);
  record("flow_eq", fe);
  return 0;
}
