// Table 5.2 — area results for the synchronous and desynchronized
// ARM-class core.
//
// Matches the paper's setup (§5.3): Low-Leakage library variant, scan
// design, and — because the designers could not partition the third-party
// core — a single desynchronization group.  Only area is reported (the
// paper had no ARM testbench).
#include "dft/scan.h"
#include "harness.h"
#include "pnr/pnr.h"

namespace pnr = desync::pnr;
namespace dft = desync::dft;
using namespace bench;

namespace {

void printRow(const char* name, double a, double b, const char* paper) {
  double ovh = a > 0 ? (b - a) / a * 100.0 : 0.0;
  row("  %-28s %12.0f %12.0f %8.2f%%   (paper: %s)", name, a, b, ovh, paper);
}

}  // namespace

int main() {
  header("Table 5.2: area results for synchronous and desynchronized ARM");

  const lib::Gatefile& gf = gatefileLl();

  nl::Design d;
  designs::buildCpu(d, gf, designs::armClassConfig());
  // DFT: scan insertion before desynchronization (flow of Fig 2.1).
  dft::ScanResult scan = dft::insertScan(*d.findModule("armlike"), gf);
  row("  scan chain: %zu flip-flops", scan.chain_length);

  nl::Design sync_copy;
  nl::cloneModule(sync_copy, *d.findModule("armlike"));
  sync_copy.setTop("armlike");

  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  // Single group, as the paper did for the ARM (§5.3): every sequential
  // cell into one region.
  opt.manual_seq_groups = {{""}};
  opt.grouping.false_path_nets = {"scan_en"};
  core::DesyncResult res =
      core::desynchronize(d, *d.findModule("armlike"), gf, opt);
  row("  regions: %d (single group + group 0, as in the paper)",
      res.regions.n_groups);

  pnr::PnrResult s = pnr::placeAndRoute(sync_copy.top(), gf);
  pnr::PnrOptions dopt;
  dopt.clock_ports = {};
  pnr::PnrResult dd = pnr::placeAndRoute(*d.findModule("armlike"), gf, dopt);

  // Sequential attribution as the paper does (§5.3.1): substitution glue —
  // including the scan muxes — counts toward the sequential overhead.
  auto seqWithGlue = [&gf](nl::Module& m) {
    static const std::vector<std::string> kGlue = {
        "_Lm",  "_Ls",  "_acm", "_acs",  "_agm",  "_ags",  "_apm",
        "_aps", "_apgm", "_apgs", "_scmux", "_syr", "_sys", "_qninv"};
    double area = 0;
    m.forEachCell([&](nl::CellId id) {
      const auto* c = gf.library().findCell(std::string(m.cellType(id)));
      if (c == nullptr) return;
      bool seq = c->kind != lib::CellKind::kCombinational;
      if (!seq) {
        std::string name(m.cellName(id));
        for (const std::string& suffix : kGlue) {
          if (name.find(suffix) != std::string::npos) {
            seq = true;
            break;
          }
        }
      }
      if (seq) area += c->area;
    });
    return area;
  };
  const double s_seq = seqWithGlue(sync_copy.top());
  const double d_seq = seqWithGlue(*d.findModule("armlike"));

  row("  %-28s %12s %12s %9s", "post-synthesis", "ARM", "DARM", "overhead");
  printRow("# nets", double(s.nets_pre), double(dd.nets_pre), "+31.52%");
  printRow("# cells", double(s.cells_pre), double(dd.cells_pre), "+44.19%");
  printRow("cell area (um^2)", s.cell_area_pre, dd.cell_area_pre,
           "+18.43%");
  printRow("combinational (um^2)", s.cell_area_pre - s_seq,
           dd.cell_area_pre - d_seq, "+0.21%");
  printRow("sequential+glue (um^2)", s_seq, d_seq, "+40.70%");

  row("  %-28s %12s %12s %9s", "post-layout", "ARM", "DARM", "overhead");
  printRow("# nets", double(s.nets_post), double(dd.nets_post), "+29.18%");
  printRow("# cells", double(s.cells_post), double(dd.cells_post),
           "+40.76%");
  printRow("std cell area (um^2)", s.std_cell_area, dd.std_cell_area,
           "+19.12%");
  printRow("core size (um^2)", s.core_size, dd.core_size, "+7.94%");
  row("  %-28s %11.2f%% %11.2f%%             (paper: 79.95%% / 88.23%%)",
      "core utilization", s.utilization * 100, dd.utilization * 100);

  row("\n  notes: scan flip-flop substitution folds the scan mux into the");
  row("  'sequential' overhead, which is why it exceeds the DLX's (paper");
  row("  makes the same observation: +40.70%% vs +17.66%%).");
  return 0;
}
