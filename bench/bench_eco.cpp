// Incremental ECO recompute bench: warm --eco run vs the warm
// whole-snapshot restore path, at 1/5/50-cell edit sizes.
//
// An engineering change order inverts the data inputs of a handful of
// registers (a scripted polarity fix, the classic metal-layer ECO).  Three
// runs are measured per design and edit size:
//
//   cold     — the full flow on the edited design, FlowDB off.  The
//              byte-identity reference.
//   restore  — the warm whole-snapshot path: the pass cache is primed
//              with the *edited* design, so the rerun restores all seven
//              passes from snapshots.  The FE prover still runs (proofs
//              are not part of the pass snapshots), which is exactly why
//              a whole-design cache cannot make prove-mode reruns cheap.
//   eco      — the --eco path: the ECO tables are primed on the
//              *unedited* design, the edit is applied, and the warm rerun
//              re-analyzes only the dirtied regions/endpoints/registers
//              and restores the surviving proofs (docs/eco.md).
//
// Both warm paths must be byte-identical to cold.  The accept gate
// (`bench_eco_accept`) fails unless the 5-cell ECO on the ARM-class
// design is at least 5x faster than its warm whole-snapshot restore.
//
// Timed region: desynchronize() only (design construction stands in for
// parsing and is paid identically by all runs).  The primed ECO cache
// directory is snapshotted once per design and restored before every warm
// repeat so each repeat sees the same pre-edit tables.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.h"
#include "netlist/verilog.h"
#include "trace/trace.h"

namespace fs = std::filesystem;

namespace {

/// The scripted ECO: inserts an inverter in front of the data pins of the
/// first `count` flip-flops whose D net has exactly one sink and a
/// combinational driver (a late-in-cone edit: each site dirties one
/// register's input cone, not a whole stage).  Returns the edit count.
int applyEcoEdit(bench::nl::Module& m, const bench::lib::Gatefile& gf,
                 int count) {
  std::vector<bench::nl::CellId> ffs;
  m.forEachCell([&](bench::nl::CellId c) {
    if (gf.isFlipFlop(m.cellType(c))) ffs.push_back(c);
  });
  int done = 0;
  for (bench::nl::CellId ff : ffs) {
    if (done >= count) break;
    const bench::lib::SeqClass* sc = gf.seqClass(m.cellType(ff));
    if (sc == nullptr || sc->data_pin.empty()) continue;
    const bench::nl::NetId d = m.pinNet(ff, sc->data_pin);
    if (!d.valid()) continue;
    const bench::nl::Net& n = m.net(d);
    if (!n.driver.isCellPin() || n.sinks.size() != 1) continue;
    if (gf.kind(m.cellType(n.driver.cell())) !=
        bench::lib::CellKind::kCombinational) {
      continue;
    }
    const std::string base = "eco_fix" + std::to_string(done);
    const bench::nl::NetId out = m.addNet(base + "_z");
    m.addCell(base + "_inv", "IV",
              {{"A", bench::nl::PortDir::kInput, d},
               {"Z", bench::nl::PortDir::kOutput, out}});
    m.connectPin(ff, m.findPin(ff, sc->data_pin), out);
    ++done;
  }
  return done;
}

struct FlowOutput {
  std::string verilog;
  std::string sdc;
};

struct EcoStats {
  std::int64_t regions_restored = 0;
  std::int64_t registers_restored = 0;
  bool warm = false;
};

/// One desynchronization of `config`, with `edits` ECO sites applied
/// (0 = pristine), against `cache_dir` (empty = FlowDB off) in snapshot or
/// --eco mode.  Returns the desynchronize() wall time.
double runFlow(const bench::designs::CpuConfig& config, int edits,
               const std::string& cache_dir, bool eco, FlowOutput* out,
               EcoStats* stats, int* edits_done = nullptr) {
  bench::nl::Design design;
  bench::designs::buildCpu(design, bench::gatefileHs(), config);
  bench::nl::Module& m = *design.findModule(config.name);
  if (edits > 0) {
    const int done = applyEcoEdit(m, bench::gatefileHs(), edits);
    if (edits_done) *edits_done = done;
  }
  bench::core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  if (config.name != "dlx") opt.manual_seq_groups = {{""}};
  opt.fe.mode = bench::core::FeMode::kProve;
  opt.flowdb.cache_dir = cache_dir;
  opt.flowdb.eco = eco;
  const auto t0 = std::chrono::steady_clock::now();
  bench::core::DesyncResult r =
      bench::core::desynchronize(design, m, bench::gatefileHs(), opt);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (out) {
    out->verilog = bench::nl::writeVerilog(m);
    out->sdc = r.sdc.toText();
  }
  if (stats) {
    stats->regions_restored = r.flow.eco().regions_restored;
    stats->registers_restored = r.flow.eco().registers_restored;
    stats->warm = r.flow.eco().warm;
  }
  if (std::getenv("DESYNC_ECO_DEBUG")) {
    std::printf("-- %s edits=%d cache=%d eco=%d: %.1f ms\n",
                config.name.c_str(), edits, cache_dir.empty() ? 0 : 1,
                eco ? 1 : 0, ms);
    for (const auto& p : r.flow.passes()) {
      std::printf("   %-18s %8.2f ms\n", p.name.c_str(), p.wall_ms);
    }
  }
  return ms;
}

/// One design x edit-size measurement.
struct SizeResult {
  int requested = 0;
  int edits = 0;         ///< sites the scripted edit actually found
  double cold_ms = 0;    ///< full flow on the edited design, FlowDB off
  double restore_ms = 0; ///< warm whole-snapshot restore of the edited run
  double eco_ms = 0;     ///< --eco over tables primed on the pristine design
  bool restore_matches = false;
  bool eco_matches = false;
  EcoStats eco;
  double eco_speedup() const {
    return eco_ms > 0 ? restore_ms / eco_ms : 0;
  }
};

SizeResult measureSize(const bench::designs::CpuConfig& config, int size,
                       const fs::path& eco_primed, int repeats) {
  const fs::path snap_dir =
      fs::temp_directory_path() /
      ("bench_eco_" + config.name + "_" + std::to_string(size) + "_snap");
  const fs::path eco_dir =
      fs::temp_directory_path() /
      ("bench_eco_" + config.name + "_" + std::to_string(size) + "_eco");
  SizeResult r;
  r.requested = size;
  r.cold_ms = r.restore_ms = r.eco_ms = 1e300;

  // Cold baseline + byte-identity reference.
  FlowOutput reference;
  for (int i = 0; i < repeats; ++i) {
    r.cold_ms = std::min(
        r.cold_ms, runFlow(config, size, "", false,
                           i == 0 ? &reference : nullptr, nullptr,
                           i == 0 ? &r.edits : nullptr));
  }

  // Warm whole-snapshot restore: prime with the edited design, rerun.
  fs::remove_all(snap_dir);
  runFlow(config, size, snap_dir.string(), false, nullptr, nullptr);
  r.restore_matches = true;
  for (int i = 0; i < repeats; ++i) {
    FlowOutput warm;
    r.restore_ms = std::min(
        r.restore_ms,
        runFlow(config, size, snap_dir.string(), false, &warm, nullptr));
    r.restore_matches = r.restore_matches &&
                        warm.verilog == reference.verilog &&
                        warm.sdc == reference.sdc;
  }
  fs::remove_all(snap_dir);

  // ECO: every repeat sees the same pre-edit tables.
  r.eco_matches = true;
  for (int i = 0; i < repeats; ++i) {
    fs::remove_all(eco_dir);
    fs::copy(eco_primed, eco_dir, fs::copy_options::recursive);
    FlowOutput warm;
    r.eco_ms = std::min(r.eco_ms, runFlow(config, size, eco_dir.string(),
                                          true, &warm, &r.eco));
    r.eco_matches = r.eco_matches && warm.verilog == reference.verilog &&
                    warm.sdc == reference.sdc;
    if (!r.eco_matches) break;
  }
  fs::remove_all(eco_dir);
  return r;
}

std::vector<SizeResult> measureDesign(
    const bench::designs::CpuConfig& config, int repeats) {
  // The ECO tables are primed once on the pristine design and shared by
  // every edit size (each repeat restores its own copy).
  const fs::path primed =
      fs::temp_directory_path() / ("bench_eco_" + config.name + "_primed");
  fs::remove_all(primed);
  runFlow(config, 0, primed.string(), true, nullptr, nullptr);

  std::vector<SizeResult> out;
  for (int size : {1, 5, 50}) {
    out.push_back(measureSize(config, size, primed, repeats));
  }
  fs::remove_all(primed);
  return out;
}

void printDesign(const char* name, const std::vector<SizeResult>& rs) {
  for (const SizeResult& r : rs) {
    bench::row("%-8s %6d %10.1f %12.1f %10.1f %8.1fx %8s %9lld %9lld", name,
               r.edits, r.cold_ms, r.restore_ms, r.eco_ms, r.eco_speedup(),
               r.restore_matches && r.eco_matches ? "yes" : "NO",
               static_cast<long long>(r.eco.regions_restored),
               static_cast<long long>(r.eco.registers_restored));
  }
}

void addJson(std::vector<std::pair<std::string, double>>& kv,
             const std::string& design, const std::vector<SizeResult>& rs) {
  for (const SizeResult& r : rs) {
    const std::string p = design + "_" + std::to_string(r.requested) + "c_";
    kv.emplace_back(p + "edits", static_cast<double>(r.edits));
    kv.emplace_back(p + "cold_ms", r.cold_ms);
    kv.emplace_back(p + "restore_ms", r.restore_ms);
    kv.emplace_back(p + "eco_ms", r.eco_ms);
    kv.emplace_back(p + "eco_speedup", r.eco_speedup());
    kv.emplace_back(p + "matches_cold",
                    r.restore_matches && r.eco_matches ? 1.0 : 0.0);
    kv.emplace_back(p + "regions_restored",
                    static_cast<double>(r.eco.regions_restored));
    kv.emplace_back(p + "registers_restored",
                    static_cast<double>(r.eco.registers_restored));
  }
}

}  // namespace

int main() {
  desync::trace::startFromEnv();
  const int repeats = bench::benchRepeats();
  bench::header("ECO incremental recompute vs warm snapshot restore "
                "(fe-mode prove)");
  bench::row("%-8s %6s %10s %12s %10s %9s %8s %9s %9s", "design", "edits",
             "cold_ms", "restore_ms", "eco_ms", "speedup", "match",
             "regions", "regs");

  bench::RepeatedTiming total;
  const auto t0 = std::chrono::steady_clock::now();

  const std::vector<SizeResult> dlx =
      measureDesign(bench::designs::dlxConfig(), repeats);
  printDesign("dlx", dlx);
  const std::vector<SizeResult> arm =
      measureDesign(bench::designs::armClassConfig(), repeats);
  printDesign("arm", arm);

  total.runs_ms.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  total.min_ms = total.median_ms = total.runs_ms.front();
  std::vector<std::pair<std::string, double>> kv;
  addJson(kv, "dlx", dlx);
  addJson(kv, "arm", arm);
  bench::writeBenchJson("eco", total, kv);

  // Accept gate: every run byte-identical and warm, every edit fully
  // applied, and the 5-cell ECO on the ARM-class design at least 5x
  // faster than its warm whole-snapshot restore (ISSUE 10's bar; the DLX
  // ratios are informational — the design is small enough that fixed
  // per-run costs dominate).
  bool ok = true;
  for (const auto* rs : {&dlx, &arm}) {
    for (const SizeResult& r : *rs) {
      ok = ok && r.edits == r.requested && r.restore_matches &&
           r.eco_matches && r.eco.warm;
      // A 50-cell edit may legitimately dirty every region; the small
      // edits must leave most of the design restorable.
      if (r.requested <= 5) ok = ok && r.eco.regions_restored > 0;
    }
  }
  const SizeResult& arm5 = arm[1];
  ok = ok && arm5.eco_speedup() >= 5.0;
  bench::row("%s",
             ok ? "OK: byte-identical everywhere, arm 5-cell ECO >= 5x the "
                  "warm snapshot restore"
                : "FAIL: output mismatch, cold ECO, incomplete edit, or arm "
                  "5-cell ECO < 5x the warm snapshot restore");
  desync::trace::finish();
  return ok ? 0 : 1;
}
