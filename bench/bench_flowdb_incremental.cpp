// FlowDB incremental-rebuild bench: cold vs warm desynchronization.
//
// The pass cache keys every stage of the flow on (snapshot, library
// fingerprint, pass options); a change to a post-substitution control knob
// (here: --margin) leaves the STA-heavy prefix — reference STA, grouping,
// substitution, dependency graph, region timing — cache-valid, so the warm
// run only recomputes control-network insertion and SDC generation.  This
// bench measures that speedup on the two case studies and checks the warm
// output is byte-identical to a cold run at the same options.
//
// Timed region: desynchronize() only.  Design construction stands in for
// netlist parsing and is paid identically by both runs; output writing is
// verification, not flow work.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "harness.h"
#include "netlist/verilog.h"

namespace fs = std::filesystem;

namespace {

struct FlowOutput {
  std::string verilog;
  std::string sdc;
};

/// One full desynchronization of `config` at `margin`; returns the wall
/// time of the desynchronize() call and, optionally, the output text.
double runFlow(const bench::designs::CpuConfig& config, double margin,
               const std::string& cache_dir, FlowOutput* out) {
  bench::nl::Design design;
  bench::designs::buildCpu(design, bench::gatefileHs(), config);
  bench::nl::Module& m = *design.findModule(config.name);
  bench::core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.control.margin = margin;
  if (config.name != "dlx") opt.manual_seq_groups = {{""}};
  opt.flowdb.cache_dir = cache_dir;
  const auto t0 = std::chrono::steady_clock::now();
  bench::core::DesyncResult r =
      bench::core::desynchronize(design, m, bench::gatefileHs(), opt);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (out) {
    out->verilog = bench::nl::writeVerilog(m);
    out->sdc = r.sdc.toText();
  }
  return ms;
}

struct ColdWarm {
  double cold_ms = 0;  ///< min over repeats, empty cache, margin 1.15
  double warm_ms = 0;  ///< min over repeats, primed cache, margin 1.25
  bool warm_matches_cold = false;
  double speedup() const { return warm_ms > 0 ? cold_ms / warm_ms : 0; }
};

ColdWarm measureDesign(const bench::designs::CpuConfig& config, int repeats) {
  const fs::path dir =
      fs::temp_directory_path() / ("bench_flowdb_" + config.name);
  ColdWarm cw;
  cw.cold_ms = 1e300;
  cw.warm_ms = 1e300;

  // Reference: what a cold run at the *changed* margin produces.  The warm
  // (cache-assisted) run must reproduce it byte-for-byte.
  fs::remove_all(dir);
  FlowOutput reference;
  runFlow(config, 1.25, dir.string(), &reference);

  for (int r = 0; r < repeats; ++r) {
    fs::remove_all(dir);
    cw.cold_ms =
        std::min(cw.cold_ms, runFlow(config, 1.15, dir.string(), nullptr));
    FlowOutput warm;
    cw.warm_ms =
        std::min(cw.warm_ms, runFlow(config, 1.25, dir.string(), &warm));
    cw.warm_matches_cold =
        warm.verilog == reference.verilog && warm.sdc == reference.sdc;
    if (!cw.warm_matches_cold) break;
  }
  fs::remove_all(dir);
  return cw;
}

}  // namespace

int main() {
  const int repeats = bench::benchRepeats();
  bench::header("FlowDB incremental rebuild (margin 1.15 -> 1.25)");
  bench::row("%-8s %12s %12s %9s %8s", "design", "cold_ms", "warm_ms",
             "speedup", "match");

  bench::RepeatedTiming total;
  const auto t0 = std::chrono::steady_clock::now();

  const ColdWarm dlx = measureDesign(bench::designs::dlxConfig(), repeats);
  bench::row("%-8s %12.1f %12.1f %8.1fx %8s", "dlx", dlx.cold_ms, dlx.warm_ms,
             dlx.speedup(), dlx.warm_matches_cold ? "yes" : "NO");

  const ColdWarm arm =
      measureDesign(bench::designs::armClassConfig(), repeats);
  bench::row("%-8s %12.1f %12.1f %8.1fx %8s", "arm", arm.cold_ms, arm.warm_ms,
             arm.speedup(), arm.warm_matches_cold ? "yes" : "NO");

  total.runs_ms.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  total.min_ms = total.median_ms = total.runs_ms.front();
  bench::writeBenchJson("flowdb_incremental", total,
                        {{"dlx_cold_ms", dlx.cold_ms},
                         {"dlx_warm_ms", dlx.warm_ms},
                         {"dlx_speedup", dlx.speedup()},
                         {"dlx_warm_matches_cold",
                          dlx.warm_matches_cold ? 1.0 : 0.0},
                         {"arm_cold_ms", arm.cold_ms},
                         {"arm_warm_ms", arm.warm_ms},
                         {"arm_speedup", arm.speedup()},
                         {"arm_warm_matches_cold",
                          arm.warm_matches_cold ? 1.0 : 0.0}});

  const bool ok = dlx.warm_matches_cold && arm.warm_matches_cold &&
                  dlx.speedup() >= 2.0 && arm.speedup() >= 2.0;
  bench::row("%s", ok ? "OK: warm >= 2x cold on both designs"
                      : "FAIL: warm run too slow or output mismatch");
  return ok ? 0 : 1;
}
