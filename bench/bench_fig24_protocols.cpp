// Figure 2.4 — desynchronization protocol ordering by allowed concurrency.
//
// Recomputes the classification the figure reports for the five handshake
// protocols: reachable state count of the two-latch STG, liveness (pair and
// master/slave ring compositions), and flow-equivalence via the semantic
// datum-commit monitor.  Also re-derives the de-synchronization model by
// exhaustive search over the protocol lattice: it is the maximally
// concurrent live + flow-equivalent protocol.
#include <cstdio>
#include <map>
#include <vector>

#include "stg/protocols.h"

namespace stg = desync::stg;

int main() {
  std::printf(
      "\n==== Figure 2.4: protocol ordering according to allowed "
      "concurrency ====\n");
  std::printf("  %-20s %8s %8s %10s %10s   %s\n", "protocol", "states",
              "live", "ring-live", "flow-eq", "paper");
  struct Ref {
    stg::Protocol p;
    const char* paper;
  };
  const std::vector<Ref> protocols = {
      {stg::Protocol::kFallDecoupled, "10 states, not flow-equivalent"},
      {stg::Protocol::kDesyncModel, "8 states, live+flow-eq"},
      {stg::Protocol::kSemiDecoupled, "6 states, live+flow-eq"},
      {stg::Protocol::kSimple, "5 states, live+flow-eq"},
      {stg::Protocol::kNonOverlapping, "4-state cycle, NOT live"},
  };
  for (const Ref& ref : protocols) {
    stg::ProtocolClass c = stg::classifyProtocol(ref.p);
    std::printf("  %-20s %8zu %8s %10s %10s   %s\n",
                stg::protocolName(ref.p), c.pair_states,
                c.pair_live ? "yes" : "NO", c.ring_live ? "yes" : "NO",
                c.flow_equivalent ? "yes" : "NO", ref.paper);
  }

  // Lattice search: enumerate small cross-arc protocols, bucket by
  // (states, live, flow-equivalent).
  std::printf("\n  protocol lattice search (cross-arc sets up to 2 arcs):\n");
  using E = stg::Evt;
  const std::vector<std::pair<E, E>> candidates = {
      {E::kAp, E::kBp}, {E::kAm, E::kBp}, {E::kAp, E::kBm}, {E::kAm, E::kBm},
      {E::kBp, E::kAp}, {E::kBm, E::kAp}, {E::kBp, E::kAm}, {E::kBm, E::kAm}};
  std::map<std::pair<std::size_t, bool>, int> histogram;
  std::size_t max_fe_states = 0;
  for (unsigned code = 0; code < (1u << 16); ++code) {
    unsigned c2 = code;
    std::vector<stg::ProtocolArc> arcs;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      unsigned m = c2 & 3;
      c2 >>= 2;
      if (m == 0) continue;
      arcs.push_back(
          {candidates[i].first, candidates[i].second,
           static_cast<std::uint8_t>(m - 1)});
    }
    if (arcs.empty() || arcs.size() > 2) continue;
    try {
      stg::Stg net = stg::makePairStg(arcs);
      stg::Reachability r = stg::analyze(net, {100000});
      if (!r.live || !r.bounded) continue;
      stg::FlowEqResult fe = stg::checkFlowEquivalence(net, 0, 1);
      histogram[{r.num_states, fe.holds}]++;
      if (fe.holds) max_fe_states = std::max(max_fe_states, r.num_states);
    } catch (...) {
      continue;
    }
  }
  for (const auto& [key, count] : histogram) {
    std::printf("    %2zu states, flow-equivalent=%-3s : %d live protocols\n",
                key.first, key.second ? "yes" : "no", count);
  }
  std::printf(
      "  most concurrent live flow-equivalent protocol: %zu states "
      "(the de-synchronization model, paper: 8)\n",
      max_fe_states);
  return 0;
}
