// Figure 5.5 — total power consumption vs delay selection.
//
// Power for the desynchronized DLX at each delay selection and corner
// (activity-based, from simulation toggle counts at the corner's supply
// voltage), against the synchronous DLX at the same corners.  Published
// shape: DDLX consumes more (flip-flop substitution raised the cell
// count), and power rises as the selection shortens because the circuit
// runs faster.
#include "harness.h"

using namespace bench;

namespace {

double measureSyncPower(nl::Module& m, const lib::Gatefile& gf,
                        double period_ns, double scale, double vdd) {
  sim::SimOptions so;
  so.delay_scale = scale;
  auto s = runSync(m, gf, period_ns, 40, std::move(so));
  sim::PowerOptions po;
  po.vdd = vdd;
  return sim::estimatePower(*s, gf, s->now(), po).total_mw();
}

}  // namespace

int main() {
  header("Figure 5.5: total power consumption vs delay selection");

  DlxPair pair = makeDlxPair(/*mux_taps=*/8);
  const lib::Gatefile& gf = *pair.gf;
  const double sync_min = pair.report.sync_min_period_ns;

  const var::CornerSpec best = var::cornerSpec(var::Corner::kBest);
  const var::CornerSpec worst = var::cornerSpec(var::Corner::kWorst);

  // Synchronous flat lines: each corner runs at its own achievable period.
  double dlx_best = measureSyncPower(pair.syncModule(), gf,
                                     sync_min * best.delay_scale * 1.05,
                                     best.delay_scale, best.vdd);
  double dlx_worst = measureSyncPower(pair.syncModule(), gf,
                                      sync_min * worst.delay_scale * 1.05,
                                      worst.delay_scale, worst.vdd);
  row("  DLX best case : %7.2f mW (flat line)", dlx_best);
  row("  DLX worst case: %7.2f mW (flat line)", dlx_worst);

  row("  %-10s %16s %16s", "selection", "DDLX best (mW)", "DDLX worst (mW)");
  for (int sel = 7; sel >= 2; --sel) {
    double power[2] = {0, 0};
    int idx = 0;
    for (const var::CornerSpec* c : {&best, &worst}) {
      sim::SimOptions so;
      so.delay_scale = c->delay_scale;
      DesyncRun run = runDesync(pair.desyncModule(), gf,
                                70 * sync_min * c->delay_scale, sel,
                                std::move(so));
      sim::PowerOptions po;
      po.vdd = c->vdd;
      power[idx++] =
          sim::estimatePower(*run.sim, gf, run.sim->now(), po).total_mw();
    }
    row("  %-10d %16.2f %16.2f", sel, power[0], power[1]);
  }
  row("\n  shape checks: power rises as the selection lowers (higher");
  row("  frequency), DDLX above DLX at matched corner (more cells), best");
  row("  corner above worst at matched selection (higher Vdd and rate).");
  return 0;
}
