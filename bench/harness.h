// Shared harness for the evaluation benches (thesis chapter 5).
//
// Builds the DLX / ARM-class case studies, desynchronizes them with the
// paper's manual four-stage regions, and provides the measurement loops the
// tables and figures are generated from.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/desync.h"
#include "core/parallel.h"
#include "designs/cpu.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "sim/flow_equivalence.h"
#include "sim/power.h"
#include "sim/simulator.h"
#include "sta/sta.h"
#include "variability/variability.h"

namespace bench {

namespace core = desync::core;
namespace designs = desync::designs;
namespace lib = desync::liberty;
namespace nl = desync::netlist;
namespace sim = desync::sim;
namespace sta = desync::sta;
namespace var = desync::variability;

inline const lib::Gatefile& gatefileHs() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

inline const lib::Gatefile& gatefileLl() {
  static const lib::Library l =
      lib::makeStdLib90(lib::LibVariant::kLowLeakage);
  static const lib::Gatefile g(l);
  return g;
}

/// The paper's DLX regions: the four pipeline stages (thesis §5.2).
inline std::vector<std::vector<std::string>> dlxStageRegions() {
  return {{"pc_", "ifid_"}, {"idex_"}, {"exmem_", "red_"}, {"rf_", "dmem_"}};
}

/// A DLX pair: pristine synchronous copy + desynchronized version.
struct DlxPair {
  nl::Design sync_design;
  nl::Design desync_design;
  core::DesyncResult report;
  const lib::Gatefile* gf = nullptr;

  nl::Module& syncModule() { return sync_design.top(); }
  nl::Module& desyncModule() { return *desync_design.findModule("dlx"); }
};

inline DlxPair makeDlxPair(int mux_taps = 0, double margin = 1.15) {
  DlxPair pair;
  pair.gf = &gatefileHs();
  designs::buildCpu(pair.desync_design, *pair.gf, designs::dlxConfig());
  nl::cloneModule(pair.sync_design,
                  *pair.desync_design.findModule("dlx"));
  pair.sync_design.setTop("dlx");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.control.mux_taps = mux_taps;
  opt.control.margin = margin;
  opt.manual_seq_groups = dlxStageRegions();
  pair.report = core::desynchronize(pair.desync_design,
                                    pair.desyncModule(), *pair.gf, opt);
  return pair;
}

/// Runs the synchronous DLX for `cycles` at `period_ns`, returning the sim.
/// Takes the module const: several batches may run concurrently over the
/// same netlist (each with its own simulator instance).
inline std::unique_ptr<sim::Simulator> runSync(const nl::Module& m,
                                               const lib::Gatefile& gf,
                                               double period_ns, int cycles,
                                               sim::SimOptions so = {}) {
  auto s = std::make_unique<sim::Simulator>(m, gf, std::move(so));
  const sim::Time half = sim::nsToPs(period_ns / 2);
  s->setInput("clk", sim::Val::k0);
  s->setInput("rst_n", sim::Val::k0);
  s->run(2 * half);
  s->setInput("rst_n", sim::Val::k1);
  s->run(s->now() + half);
  for (int i = 0; i < cycles; ++i) {
    s->setInput("clk", sim::Val::k1);
    s->run(s->now() + half);
    s->setInput("clk", sim::Val::k0);
    s->run(s->now() + half);
  }
  return s;
}

struct DesyncRun {
  std::unique_ptr<sim::Simulator> sim;
  double eff_period_ns = -1;  ///< effective period from G1 master enables
  int cycles = 0;
};

/// Runs the desynchronized circuit for a time window, measuring the
/// effective period.  `dsel` sets the delay-element calibration mux (-1 =
/// no mux ports).
inline DesyncRun runDesync(const nl::Module& m, const lib::Gatefile& gf,
                           double window_ns, int dsel = -1,
                           sim::SimOptions so = {}) {
  DesyncRun run;
  run.sim = std::make_unique<sim::Simulator>(m, gf, std::move(so));
  sim::Simulator& s = *run.sim;
  std::vector<sim::Time> rises;
  s.watchNet("G1_gm", [&](sim::Time t, sim::Val v) {
    if (v == sim::Val::k1) rises.push_back(t);
  });
  s.setInput("clk", sim::Val::k0);
  s.setInput("rst_n", sim::Val::k0);
  if (dsel >= 0) {
    for (int b = 0; b < 3; ++b) {
      if (s.portNet("dsel" + std::to_string(b)).valid()) {
        s.setInput("dsel" + std::to_string(b),
                   sim::fromBool(((dsel >> b) & 1) != 0));
      }
    }
  }
  s.run(sim::nsToPs(20));
  s.setInput("rst_n", sim::Val::k1);
  s.run(s.now() + sim::nsToPs(window_ns));
  run.cycles = static_cast<int>(rises.size());
  if (rises.size() > 4) {
    run.eff_period_ns = static_cast<double>(rises.back() - rises[2]) /
                        static_cast<double>(rises.size() - 3) / 1000.0;
  }
  return run;
}

// --- repeated measurement + machine-readable results ---------------------
//
// Wall-clock numbers from a single run are noisy; every timed bench section
// runs `benchRepeats()` times and reports the min and the median.  The
// deterministic *results* go to stdout (byte-identical across --jobs
// settings); the timing numbers go to a BENCH_<name>.json file next to the
// binary so CI can track trajectories without parsing tables.

/// Repeat count for timed sections (DESYNC_BENCH_REPEATS env, default 3).
inline int benchRepeats(int fallback = 3) {
  if (const char* env = std::getenv("DESYNC_BENCH_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1 && v <= 100) return v;
  }
  return fallback;
}

struct RepeatedTiming {
  std::vector<double> runs_ms;  ///< per-run wall time, run order
  double min_ms = 0.0;
  double median_ms = 0.0;
};

/// Runs `fn` `repeats` times, returning min/median wall time.  `fn` must be
/// idempotent (the deterministic results are identical on every repeat).
template <typename Fn>
RepeatedTiming measureRepeated(int repeats, Fn&& fn) {
  RepeatedTiming t;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    t.runs_ms.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  }
  std::vector<double> sorted = t.runs_ms;
  std::sort(sorted.begin(), sorted.end());
  t.min_ms = sorted.front();
  t.median_ms = sorted[sorted.size() / 2];
  return t;
}

/// Writes BENCH_<name>.json: {"name", "jobs", "repeats", "min_ms",
/// "median_ms", "runs_ms": [...]} plus any extra numeric fields.  `jobs`
/// records the worker count the measurement ran with (--jobs / DESYNC_JOBS).
inline void writeBenchJson(
    const std::string& name, const RepeatedTiming& t,
    const std::vector<std::pair<std::string, double>>& extra = {}) {
  std::ofstream os("BENCH_" + name + ".json");
  os.precision(6);
  os << std::fixed;
  os << "{\"name\": \"" << name << "\", \"jobs\": " << core::effectiveJobs()
     << ", \"repeats\": " << t.runs_ms.size() << ", \"min_ms\": " << t.min_ms
     << ", \"median_ms\": " << t.median_ms;
  for (const auto& [k, v] : extra) {
    os << ", \"" << k << "\": " << v;
  }
  os << ", \"runs_ms\": [";
  for (std::size_t i = 0; i < t.runs_ms.size(); ++i) {
    os << (i == 0 ? "" : ", ") << t.runs_ms[i];
  }
  os << "]}\n";
}

/// printf-style row helper.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace bench
