// Shared harness for the evaluation benches (thesis chapter 5).
//
// Builds the DLX / ARM-class case studies, desynchronizes them with the
// paper's manual four-stage regions, and provides the measurement loops the
// tables and figures are generated from.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/desync.h"
#include "designs/cpu.h"
#include "liberty/stdlib90.h"
#include "netlist/flatten.h"
#include "sim/flow_equivalence.h"
#include "sim/power.h"
#include "sim/simulator.h"
#include "sta/sta.h"
#include "variability/variability.h"

namespace bench {

namespace core = desync::core;
namespace designs = desync::designs;
namespace lib = desync::liberty;
namespace nl = desync::netlist;
namespace sim = desync::sim;
namespace sta = desync::sta;
namespace var = desync::variability;

inline const lib::Gatefile& gatefileHs() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

inline const lib::Gatefile& gatefileLl() {
  static const lib::Library l =
      lib::makeStdLib90(lib::LibVariant::kLowLeakage);
  static const lib::Gatefile g(l);
  return g;
}

/// The paper's DLX regions: the four pipeline stages (thesis §5.2).
inline std::vector<std::vector<std::string>> dlxStageRegions() {
  return {{"pc_", "ifid_"}, {"idex_"}, {"exmem_", "red_"}, {"rf_", "dmem_"}};
}

/// A DLX pair: pristine synchronous copy + desynchronized version.
struct DlxPair {
  nl::Design sync_design;
  nl::Design desync_design;
  core::DesyncResult report;
  const lib::Gatefile* gf = nullptr;

  nl::Module& syncModule() { return sync_design.top(); }
  nl::Module& desyncModule() { return *desync_design.findModule("dlx"); }
};

inline DlxPair makeDlxPair(int mux_taps = 0, double margin = 1.15) {
  DlxPair pair;
  pair.gf = &gatefileHs();
  designs::buildCpu(pair.desync_design, *pair.gf, designs::dlxConfig());
  nl::cloneModule(pair.sync_design,
                  *pair.desync_design.findModule("dlx"));
  pair.sync_design.setTop("dlx");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.control.mux_taps = mux_taps;
  opt.control.margin = margin;
  opt.manual_seq_groups = dlxStageRegions();
  pair.report = core::desynchronize(pair.desync_design,
                                    pair.desyncModule(), *pair.gf, opt);
  return pair;
}

/// Runs the synchronous DLX for `cycles` at `period_ns`, returning the sim.
inline std::unique_ptr<sim::Simulator> runSync(nl::Module& m,
                                               const lib::Gatefile& gf,
                                               double period_ns, int cycles,
                                               sim::SimOptions so = {}) {
  auto s = std::make_unique<sim::Simulator>(m, gf, std::move(so));
  const sim::Time half = sim::nsToPs(period_ns / 2);
  s->setInput("clk", sim::Val::k0);
  s->setInput("rst_n", sim::Val::k0);
  s->run(2 * half);
  s->setInput("rst_n", sim::Val::k1);
  s->run(s->now() + half);
  for (int i = 0; i < cycles; ++i) {
    s->setInput("clk", sim::Val::k1);
    s->run(s->now() + half);
    s->setInput("clk", sim::Val::k0);
    s->run(s->now() + half);
  }
  return s;
}

struct DesyncRun {
  std::unique_ptr<sim::Simulator> sim;
  double eff_period_ns = -1;  ///< effective period from G1 master enables
  int cycles = 0;
};

/// Runs the desynchronized circuit for a time window, measuring the
/// effective period.  `dsel` sets the delay-element calibration mux (-1 =
/// no mux ports).
inline DesyncRun runDesync(nl::Module& m, const lib::Gatefile& gf,
                           double window_ns, int dsel = -1,
                           sim::SimOptions so = {}) {
  DesyncRun run;
  run.sim = std::make_unique<sim::Simulator>(m, gf, std::move(so));
  sim::Simulator& s = *run.sim;
  std::vector<sim::Time> rises;
  s.watchNet("G1_gm", [&](sim::Time t, sim::Val v) {
    if (v == sim::Val::k1) rises.push_back(t);
  });
  s.setInput("clk", sim::Val::k0);
  s.setInput("rst_n", sim::Val::k0);
  if (dsel >= 0) {
    for (int b = 0; b < 3; ++b) {
      if (s.portNet("dsel" + std::to_string(b)).valid()) {
        s.setInput("dsel" + std::to_string(b),
                   sim::fromBool(((dsel >> b) & 1) != 0));
      }
    }
  }
  s.run(sim::nsToPs(20));
  s.setInput("rst_n", sim::Val::k1);
  s.run(s.now() + sim::nsToPs(window_ns));
  run.cycles = static_cast<int>(rises.size());
  if (rises.size() > 4) {
    run.eff_period_ns = static_cast<double>(rises.back() - rises[2]) /
                        static_cast<double>(rises.size() - 3) / 1000.0;
  }
  return run;
}

/// printf-style row helper.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace bench
