// Ablation — region grouping heuristics (thesis §3.2.2).
//
// Measures what each grouping ingredient buys on the DLX:
//   - automatic grouping with all heuristics (bus names + logic cleaning);
//   - without the bus-name heuristic (Fig 3.6): per-bit mux columns
//     fragment into their own regions;
//   - without logic cleaning (Fig 3.5): drive buffers tie unrelated clouds
//     together and merge regions;
//   - the paper's manual four-stage regions.
// For each variant: region count, control-network size, effective period
// and flow-equivalence.
#include "harness.h"

using namespace bench;

namespace {

struct Variant {
  const char* name;
  bool bus_heuristic;
  bool clean_logic;
  bool manual;
};

}  // namespace

int main() {
  header("Ablation: grouping heuristics on the DLX");
  row("  %-26s %8s %10s %12s %8s", "variant", "regions", "ctl cells",
      "period(ns)", "flow-eq");

  const std::vector<Variant> variants = {
      {"auto (all heuristics)", true, true, false},
      {"auto, no bus heuristic", false, true, false},
      {"auto, no logic cleaning", true, false, false},
      {"manual 4 pipeline stages", true, true, true},
  };

  for (const Variant& v : variants) {
    const lib::Gatefile& gf = gatefileHs();
    nl::Design d;
    designs::buildCpu(d, gf, designs::dlxConfig());
    nl::Design sync_copy;
    nl::cloneModule(sync_copy, *d.findModule("dlx"));
    sync_copy.setTop("dlx");
    const std::size_t cells_before = d.findModule("dlx")->numCells();

    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    opt.grouping.bus_heuristic = v.bus_heuristic;
    opt.grouping.clean_logic = v.clean_logic;
    if (v.manual) opt.manual_seq_groups = dlxStageRegions();
    core::DesyncResult res;
    try {
      res = core::desynchronize(d, *d.findModule("dlx"), gf, opt);
    } catch (const std::exception& e) {
      // Report the region count the variant produced before failing.
      nl::Design probe;
      designs::buildCpu(probe, gf, designs::dlxConfig());
      core::Regions regions =
          core::groupRegions(*probe.findModule("dlx"), gf, opt.grouping);
      row("  %-26s %8d  fragmented -> %s", v.name, regions.n_groups,
          e.what());
      continue;
    }
    const std::size_t added =
        d.findModule("dlx")->numCells() -
        std::min(cells_before, d.findModule("dlx")->numCells());

    auto golden = runSync(sync_copy.top(), gf,
                          res.sync_min_period_ns * 2, 30);
    DesyncRun run = runDesync(*d.findModule("dlx"), gf,
                              50 * res.sync_min_period_ns);
    sim::FlowEqReport fe = sim::checkFlowEquivalence(*golden, *run.sim);
    row("  %-26s %8d %10zu %12.3f %8s", v.name, res.regions.n_groups, added,
        run.eff_period_ns, fe.equivalent ? "yes" : "NO");
  }

  row("\n  expectations: the bus heuristic keeps mux-column registers");
  row("  together (far fewer regions); skipping cleaning merges regions");
  row("  through drive buffers; manual staging gives the paper's 4+1.");
  return 0;
}
