// Figure 5.3 — operational period vs delay-element selection.
//
// The desynchronized DLX carries 8-input multiplexed delay elements with a
// shared selection (thesis §5.2.2).  For each selection 7..0 and each
// corner the effective period is measured by simulation; a selection whose
// matched delay is too short for the logic breaks flow-equivalence and is
// flagged, like the dashed region of the figure.  The synchronous DLX's
// best/worst-case periods are flat reference lines.
//
// Published shape to verify: DDLX period decreases with the selection until
// the delay elements become too short — at the SAME selection for both
// corners (the delay elements track the logic across corners).
#include "harness.h"

using namespace bench;

int main() {
  header("Figure 5.3: operational period vs delay selection");

  DlxPair pair = makeDlxPair(/*mux_taps=*/8);
  const lib::Gatefile& gf = *pair.gf;

  // Synchronous reference lines (STA at each corner).
  double sync_min = pair.report.sync_min_period_ns;
  const double best_scale = var::cornerSpec(var::Corner::kBest).delay_scale;
  const double worst_scale = var::cornerSpec(var::Corner::kWorst).delay_scale;
  row("  DLX best case  period: %6.3f ns (flat line)", sync_min * best_scale);
  row("  DLX worst case period: %6.3f ns (flat line)",
      sync_min * worst_scale);

  // Golden synchronous capture sequences (values are corner-independent).
  auto golden = runSync(pair.syncModule(), gf, sync_min * 2, 50);

  row("  %-10s %14s %14s %10s", "selection", "DDLX best(ns)",
      "DDLX worst(ns)", "status");
  int first_bad_best = -1, first_bad_worst = -1;
  for (int sel = 7; sel >= 0; --sel) {
    double period[2] = {0, 0};
    bool fe_ok[2] = {false, false};
    int idx = 0;
    for (double scale : {best_scale, worst_scale}) {
      sim::SimOptions so;
      so.delay_scale = scale;
      DesyncRun run =
          runDesync(pair.desyncModule(), gf, 80 * sync_min * scale, sel,
                    std::move(so));
      period[idx] = run.eff_period_ns;
      sim::FlowEqReport fe = sim::checkFlowEquivalence(*golden, *run.sim);
      fe_ok[idx] = fe.equivalent;
      ++idx;
    }
    const char* status = (fe_ok[0] && fe_ok[1]) ? "ok"
                         : (!fe_ok[0] && !fe_ok[1])
                             ? "TOO SHORT (both corners)"
                             : "TOO SHORT (one corner)";
    if (!fe_ok[0] && first_bad_best < 0) first_bad_best = sel;
    if (!fe_ok[1] && first_bad_worst < 0) first_bad_worst = sel;
    row("  %-10d %14.3f %14.3f   %s", sel, period[0], period[1], status);
  }

  row("\n  malfunction onset: best corner at selection %d, worst corner at"
      " selection %d",
      first_bad_best, first_bad_worst);
  row("  paper: malfunction begins at the same selection for both corners");
  row("  (delay elements track the logic across corners); published best");
  row("  working setup was selection 2 on their calibration.");
  return 0;
}
