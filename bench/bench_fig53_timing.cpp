// Figure 5.3 — operational period vs delay-element selection.
//
// The desynchronized DLX carries 8-input multiplexed delay elements with a
// shared selection (thesis §5.2.2).  For each selection 7..0 and each
// corner the effective period is measured by simulation; a selection whose
// matched delay is too short for the logic breaks flow-equivalence and is
// flagged, like the dashed region of the figure.  The synchronous DLX's
// best/worst-case periods are flat reference lines.
//
// Published shape to verify: DDLX period decreases with the selection until
// the delay elements become too short — at the SAME selection for both
// corners (the delay elements track the logic across corners).
//
// The 16 (selection, corner) simulations are independent — each batch owns
// its simulator and compares against one shared golden synchronous capture
// log — so they are distributed over the parallel layer and printed in
// selection order: output is byte-identical at any --jobs setting.
#include "harness.h"

using namespace bench;

int main() {
  header("Figure 5.3: operational period vs delay selection");

  DlxPair pair = makeDlxPair(/*mux_taps=*/8);
  const lib::Gatefile& gf = *pair.gf;

  // Synchronous reference lines (STA at each corner).
  double sync_min = pair.report.sync_min_period_ns;
  const double best_scale = var::cornerSpec(var::Corner::kBest).delay_scale;
  const double worst_scale = var::cornerSpec(var::Corner::kWorst).delay_scale;
  row("  DLX best case  period: %6.3f ns (flat line)", sync_min * best_scale);
  row("  DLX worst case period: %6.3f ns (flat line)",
      sync_min * worst_scale);

  // Golden synchronous capture sequences (values are corner-independent);
  // read concurrently by every batch below.
  auto golden = runSync(pair.syncModule(), gf, sync_min * 2, 50);

  // Batch b -> (selection 7 - b/2, corner b%2): one desync simulation plus
  // a flow-equivalence check against the shared golden log.
  struct Probe {
    double period_ns = 0;
    bool fe_ok = false;
  };
  constexpr std::size_t kBatches = 16;
  std::vector<Probe> probes;
  auto runAll = [&] {
    probes = core::parallelMap(kBatches, [&](std::size_t b) {
      const int sel = 7 - static_cast<int>(b / 2);
      const double scale = (b % 2 == 0) ? best_scale : worst_scale;
      sim::SimOptions so;
      so.delay_scale = scale;
      DesyncRun run = runDesync(pair.desyncModule(), gf,
                                80 * sync_min * scale, sel, std::move(so));
      Probe p;
      p.period_ns = run.eff_period_ns;
      p.fe_ok = sim::checkFlowEquivalence(*golden, *run.sim).equivalent;
      return p;
    });
  };
  const RepeatedTiming timing = measureRepeated(benchRepeats(1), runAll);

  row("  %-10s %14s %14s %10s", "selection", "DDLX best(ns)",
      "DDLX worst(ns)", "status");
  int first_bad_best = -1, first_bad_worst = -1;
  for (int sel = 7; sel >= 0; --sel) {
    const Probe& best = probes[static_cast<std::size_t>(7 - sel) * 2];
    const Probe& worst = probes[static_cast<std::size_t>(7 - sel) * 2 + 1];
    const char* status = (best.fe_ok && worst.fe_ok) ? "ok"
                         : (!best.fe_ok && !worst.fe_ok)
                             ? "TOO SHORT (both corners)"
                             : "TOO SHORT (one corner)";
    if (!best.fe_ok && first_bad_best < 0) first_bad_best = sel;
    if (!worst.fe_ok && first_bad_worst < 0) first_bad_worst = sel;
    row("  %-10d %14.3f %14.3f   %s", sel, best.period_ns, worst.period_ns,
        status);
  }

  row("\n  malfunction onset: best corner at selection %d, worst corner at"
      " selection %d",
      first_bad_best, first_bad_worst);
  row("  paper: malfunction begins at the same selection for both corners");
  row("  (delay elements track the logic across corners); published best");
  row("  working setup was selection 2 on their calibration.");

  writeBenchJson("fig53_timing", timing,
                 {{"batches", static_cast<double>(kBatches)}});
  return 0;
}
