// SSTA margin analysis — the thesis's stated future work ("SSTA can be
// used to verify how well the delay elements match the logic delay across
// the whole spectrum of operation conditions", ch.6).
//
// Monte-Carlo statistical STA over die samples (inter-die scale + per-cell
// intra-die variation): for every region of the desynchronized DLX, the
// matched delay element and the region critical path are re-timed per
// sample, and the margin distribution (element delay / required delay) is
// reported.  A margin that dips below 1.0 on some die is a timing-yield
// loss; the flow's margin option must cover the intra-die sigma.
#include <algorithm>
#include <cmath>

#include "harness.h"

using namespace bench;

int main() {
  header("SSTA: delay-element margin distribution over die samples");

  DlxPair pair = makeDlxPair();
  const lib::Gatefile& gf = *pair.gf;
  nl::Module& m = pair.desyncModule();

  const int kSamples = 60;
  var::VariationModel model = var::makeSpanModel(11);
  // Intra-die only matters for margins (inter-die cancels between the
  // element and the logic it matches — the paper's central argument).
  row("  flow margin option: %.0f%%; intra-die sigma: %.0f%%",
      (1.15 - 1.0) * 100, model.intra_die_sigma * 100);

  struct Stats {
    double min = 1e9, sum = 0, sum2 = 0;
    int n = 0;
    void add(double v) {
      min = std::min(min, v);
      sum += v;
      sum2 += v * v;
      ++n;
    }
  };
  std::vector<Stats> per_region(pair.report.control.regions.size());
  int failing_dies = 0;

  for (int s = 0; s < kSamples; ++s) {
    var::ChipSample chip =
        var::sampleChip(model, static_cast<std::uint64_t>(s));
    sta::StaOptions so;
    so.disabled = pair.report.sdc.disabled;
    // Inter-die scale applies to everything equally; margins depend only on
    // the intra-die component, but we keep both for realism.
    so.delay_scale = chip.global;
    so.cell_scale = chip.cell_factor;
    sta::Sta analysis(m, gf, so);

    bool die_fails = false;
    for (std::size_t r = 0; r < pair.report.control.regions.size(); ++r) {
      const core::RegionControl& rc = pair.report.control.regions[r];
      // Required: worst path into the region's master latches.
      double required = 0;
      for (nl::CellId cid :
           pair.report.regions.seq_cells[static_cast<std::size_t>(rc.group)]) {
        std::string name(m.cellName(cid));
        if (name.size() < 3 || name.substr(name.size() - 3) != "_Lm") {
          continue;
        }
        if (auto v = analysis.combDelayToSeq(name)) {
          required = std::max(required, *v);
        }
      }
      // Matched: the in-place delay element, re-timed with this die's
      // per-cell factors (input joint request net -> master ri net).
      std::string g = "G" + std::to_string(rc.group);
      nl::NetId ri = m.findNet(g + "_m_ri");
      if (!ri.valid() || required <= 0) continue;
      const nl::Net& ri_net = m.net(ri);
      if (!ri_net.driver.isCellPin()) continue;
      // The DE's A input net:
      nl::CellId de_last = ri_net.driver.cell();
      (void)de_last;
      // Find the element's source: the net feeding "G<k>_DE/u0" pin A.
      nl::CellId first = m.findCell(g + "_DE/u0");
      if (!first.valid()) continue;
      nl::NetId src = m.pinNet(first, "A");
      auto matched = analysis.netToNetNs(m.netName(src), m.netName(ri),
                                         /*rising_out=*/true);
      if (!matched) continue;
      const double margin = *matched / required;
      per_region[r].add(margin);
      if (margin < 1.0) die_fails = true;
    }
    if (die_fails) ++failing_dies;
  }

  row("  %-8s %10s %10s %10s %10s", "region", "mean", "sigma", "min",
      "levels");
  for (std::size_t r = 0; r < per_region.size(); ++r) {
    const Stats& st = per_region[r];
    if (st.n == 0) continue;
    const double mean = st.sum / st.n;
    const double sigma = std::sqrt(std::max(0.0, st.sum2 / st.n - mean * mean));
    row("  G%-7d %10.3f %10.3f %10.3f %10d",
        pair.report.control.regions[r].group, mean, sigma, st.min,
        pair.report.control.regions[r].delay_levels);
  }
  row("\n  dies with any region margin < 1.0: %d / %d", failing_dies,
      kSamples);
  row("  interpretation: inter-die variation cancels between element and");
  row("  logic (same die); only the intra-die sigma eats into the %.0f%%",
      (1.15 - 1.0) * 100);
  row("  margin — exactly the matching property the paper claims (§2.5).");
  return 0;
}
