// SSTA margin analysis — the thesis's stated future work ("SSTA can be
// used to verify how well the delay elements match the logic delay across
// the whole spectrum of operation conditions", ch.6).
//
// Monte-Carlo statistical STA over die samples (inter-die scale + per-cell
// intra-die variation): for every region of the desynchronized DLX, the
// matched delay element and the region critical path are re-timed per
// sample, and the margin distribution (element delay / required delay) is
// reported.  A margin that dips below 1.0 on some die is a timing-yield
// loss; the flow's margin option must cover the intra-die sigma.
//
// The die samples are independent (each derives its randomness from
// (seed, sample, cell-name) hashing), so they are distributed over the
// parallel layer — one STA per die over a shared read-only binding — and
// reduced serially in sample order: the table below is byte-identical at
// any --jobs / DESYNC_JOBS setting.  Timings go to BENCH_ssta_margins.json.
#include <algorithm>
#include <cmath>

#include "harness.h"

using namespace bench;

int main() {
  header("SSTA: delay-element margin distribution over die samples");

  DlxPair pair = makeDlxPair();
  const lib::Gatefile& gf = *pair.gf;
  nl::Module& m = pair.desyncModule();

  const int kSamples = 60;
  var::VariationModel model = var::makeSpanModel(11);
  // Intra-die only matters for margins (inter-die cancels between the
  // element and the logic it matches — the paper's central argument).
  row("  flow margin option: %.0f%%; intra-die sigma: %.0f%%",
      (1.15 - 1.0) * 100, model.intra_die_sigma * 100);

  // Shared read-only binding: every die's STA builds on it concurrently.
  const lib::BoundModule bound(m, gf);

  const std::size_t n_regions = pair.report.control.regions.size();

  // Per-region query nets, resolved once (shared, read-only).
  struct RegionQuery {
    std::string src;  ///< delay-element input net
    std::string ri;   ///< master request net
    bool ok = false;
  };
  std::vector<RegionQuery> queries(n_regions);
  std::vector<std::vector<nl::CellId>> region_cells(n_regions);
  for (std::size_t r = 0; r < n_regions; ++r) {
    const core::RegionControl& rc = pair.report.control.regions[r];
    region_cells[r] =
        pair.report.regions.seq_cells[static_cast<std::size_t>(rc.group)];
    const std::string g = "G" + std::to_string(rc.group);
    nl::NetId ri = m.findNet(g + "_m_ri");
    if (!ri.valid() || !m.net(ri).driver.isCellPin()) continue;
    nl::CellId first = m.findCell(g + "_DE/u0");
    if (!first.valid()) continue;
    queries[r].src = std::string(m.netName(m.pinNet(first, "A")));
    queries[r].ri = std::string(m.netName(ri));
    queries[r].ok = true;
  }

  // One margin row per die, filled concurrently, merged in sample order.
  // margin < 0 marks a skipped (unmeasurable) region, as before.
  std::vector<std::vector<double>> margins;
  auto sampleAll = [&] {
    margins.assign(static_cast<std::size_t>(kSamples), {});
    var::forEachSample(
        model, static_cast<std::size_t>(kSamples),
        [&](std::size_t s, const var::ChipSample& chip) {
          sta::StaOptions so;
          so.disabled = pair.report.sdc.disabled;
          // Inter-die scale applies to everything equally; margins depend
          // only on the intra-die component, but we keep both for realism.
          so.delay_scale = chip.global;
          so.cell_scale = chip.cell_factor;
          sta::Sta analysis(bound, so);

          // Required: worst path into each region's master latches (the
          // nested per-region queries run inline inside this sample).
          const std::vector<double> required =
              analysis.regionWorstDelays(region_cells, "_Lm");

          std::vector<double> die(n_regions, -1.0);
          for (std::size_t r = 0; r < n_regions; ++r) {
            if (!queries[r].ok || required[r] <= 0) continue;
            // Matched: the in-place delay element, re-timed with this
            // die's per-cell factors (input request net -> master ri net).
            auto matched = analysis.netToNetNs(queries[r].src, queries[r].ri,
                                               /*rising_out=*/true);
            if (!matched) continue;
            die[r] = *matched / required[r];
          }
          margins[s] = std::move(die);
        });
  };
  const RepeatedTiming timing = measureRepeated(benchRepeats(), sampleAll);

  // Serial reduction in sample order: byte-identical at any jobs count.
  struct Stats {
    double min = 1e9, sum = 0, sum2 = 0;
    int n = 0;
    void add(double v) {
      min = std::min(min, v);
      sum += v;
      sum2 += v * v;
      ++n;
    }
  };
  std::vector<Stats> per_region(n_regions);
  int failing_dies = 0;
  for (int s = 0; s < kSamples; ++s) {
    bool die_fails = false;
    for (std::size_t r = 0; r < n_regions; ++r) {
      const double margin = margins[static_cast<std::size_t>(s)][r];
      if (margin < 0) continue;
      per_region[r].add(margin);
      if (margin < 1.0) die_fails = true;
    }
    if (die_fails) ++failing_dies;
  }

  row("  %-8s %10s %10s %10s %10s", "region", "mean", "sigma", "min",
      "levels");
  for (std::size_t r = 0; r < per_region.size(); ++r) {
    const Stats& st = per_region[r];
    if (st.n == 0) continue;
    const double mean = st.sum / st.n;
    const double sigma = std::sqrt(std::max(0.0, st.sum2 / st.n - mean * mean));
    row("  G%-7d %10.3f %10.3f %10.3f %10d",
        pair.report.control.regions[r].group, mean, sigma, st.min,
        pair.report.control.regions[r].delay_levels);
  }
  row("\n  dies with any region margin < 1.0: %d / %d", failing_dies,
      kSamples);
  row("  interpretation: inter-die variation cancels between element and");
  row("  logic (same die); only the intra-die sigma eats into the %.0f%%",
      (1.15 - 1.0) * 100);
  row("  margin — exactly the matching property the paper claims (§2.5).");

  writeBenchJson("ssta_margins", timing,
                 {{"samples", static_cast<double>(kSamples)},
                  {"regions", static_cast<double>(n_regions)}});
  return 0;
}
