// Figure 5.4 — real operation delay comparison between DLX and DDLX.
//
// The paper models fabricated parts as a normal distribution of inter-die
// delay between the two extreme corners ("exactly like SSTA does") and
// compares the desynchronized circuit at its *best working delay-element
// setup* (the calibrated selection of Fig 5.3) against the synchronous
// worst-case sign-off period, finding the DDLX faster on ~90% of parts.
//
// Here the best working selection is found exactly as in Fig 5.3 (lowest
// selection that preserves flow-equivalence), then the DDLX effective
// period is measured by simulation at sampled inter-die quantiles with
// intra-die Monte-Carlo variation on every cell.
//
// Both sweeps are batched over the parallel layer: the 8 calibration
// probes run as flow-equivalence batches against one shared golden log,
// and the 7 quantile simulations are independent dies.  Results are merged
// in index order — output is byte-identical at any --jobs setting.
#include "harness.h"

using namespace bench;

int main() {
  header("Figure 5.4: effective operational period distribution");

  DlxPair pair = makeDlxPair(/*mux_taps=*/8);
  const lib::Gatefile& gf = *pair.gf;
  const double sync_min = pair.report.sync_min_period_ns;
  const double sync_worst =
      sync_min * var::cornerSpec(var::Corner::kWorst).delay_scale;
  const double sync_best =
      sync_min * var::cornerSpec(var::Corner::kBest).delay_scale;
  row("  DLX worst-case sign-off period: %6.3f ns", sync_worst);
  row("  DLX best-case period:           %6.3f ns", sync_best);

  // Best working delay selection (lowest flow-equivalent one), as the
  // paper calibrates before this comparison (§5.2.2 "If the best working
  // setup is taken into consideration").  The 8 probes are one batch each
  // against the shared golden log; the lowest equivalent index wins — the
  // same answer the serial early-exit scan produced.
  auto golden = runSync(pair.syncModule(), gf, sync_min * 2, 50);
  sim::FlowEqBatchReport probes = sim::checkFlowEquivalenceBatches(
      *golden, 8, [&](std::size_t sel) {
        return runDesync(pair.desyncModule(), gf, 70 * sync_min,
                         static_cast<int>(sel))
            .sim;
      });
  int best_sel = 7;
  for (std::size_t sel = 0; sel < probes.per_batch.size(); ++sel) {
    if (probes.per_batch[sel].equivalent) {
      best_sel = static_cast<int>(sel);
      break;
    }
  }
  row("  best working delay selection: %d (paper: 2)", best_sel);

  // Measure DDLX across the inter-die distribution at that selection: one
  // independent simulation per quantile, merged in quantile order.
  var::VariationModel model = var::makeSpanModel(7);
  const std::vector<double> quantiles = {0.02, 0.10, 0.25, 0.50,
                                         0.75, 0.90, 0.98};
  std::vector<double> periods;
  auto runAll = [&] {
    periods = core::parallelMap(quantiles.size(), [&](std::size_t i) {
      const double die_scale = var::interDieScaleAtQuantile(quantiles[i]);
      var::ChipSample chip = var::sampleChip(model, i);
      sim::SimOptions so;
      so.delay_scale = die_scale;
      so.cell_delay_scale = chip.cell_factor;  // intra-die on every cell
      return runDesync(pair.desyncModule(), gf, 60 * sync_min * die_scale,
                       best_sel, std::move(so))
          .eff_period_ns;
    });
  };
  const RepeatedTiming timing = measureRepeated(benchRepeats(1), runAll);

  row("  %-10s %-12s %-14s %s", "quantile", "die scale", "DDLX period",
      "beats DLX worst?");
  std::vector<std::pair<double, double>> samples;  // (quantile, period)
  for (std::size_t i = 0; i < quantiles.size(); ++i) {
    const double q = quantiles[i];
    const double die_scale = var::interDieScaleAtQuantile(q);
    samples.emplace_back(q, periods[i]);
    row("  %-10.2f %-12.3f %10.3f ns   %s", q, die_scale, periods[i],
        periods[i] < sync_worst ? "yes" : "no");
  }

  // Fraction of the population whose DDLX period beats the DLX worst line.
  double crossover_q = 0.0;
  if (samples.front().second <= sync_worst) {
    crossover_q = 1.0;  // until proven otherwise below
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i - 1].second <= sync_worst &&
          samples[i].second > sync_worst) {
        const double f = (sync_worst - samples[i - 1].second) /
                         (samples[i].second - samples[i - 1].second);
        crossover_q = samples[i - 1].first +
                      f * (samples[i].first - samples[i - 1].first);
        break;
      }
    }
  }
  row("\n  DDLX faster than the DLX worst-case on %.0f%% of parts "
      "(paper: ~90%%)",
      crossover_q * 100.0);
  row("  (the desynchronized period scales with each die automatically;");
  row("   the synchronous part must always run at its worst-case sign-off)");

  writeBenchJson("fig54_variability", timing,
                 {{"quantiles", static_cast<double>(quantiles.size())}});
  return 0;
}
