// Ablation — latch controller protocols (thesis §2.2, Fig 2.4).
//
// Compares the simple (Muller C-element) controller against the
// semi-decoupled controller used by the flow:
//   - speed-independent verification state counts and outcomes;
//   - the classic deadlock of the simple controller in a master/slave ring
//     of one pair (why desynchronization needs decoupling);
//   - bare-ring oscillation periods (controller overhead without logic);
//   - a deeper 3-pair semi-decoupled ring verification (the one too slow
//     for the default test suite).
#include "async/controllers.h"
#include "async/verify_adapter.h"
#include "designs/small.h"
#include "harness.h"
#include "netlist/flatten.h"
#include "stg/si_verify.h"

namespace async = desync::async;
namespace stgv = desync::stg;
using namespace bench;

namespace {

stgv::SiResult verifyRing(async::ControllerKind kind, int pairs) {
  nl::Design d;
  nl::Module& ring =
      async::buildControllerRing(d, gatefileHs(), kind, pairs);
  stgv::SiCircuit c = async::toSiCircuit(ring, gatefileHs());
  stgv::Stg closed;
  return stgv::verifySpeedIndependent(c, closed, 1u << 24);
}

double ringPeriod(async::ControllerKind kind, int pairs) {
  nl::Design d;
  nl::Module& ring =
      async::buildControllerRing(d, gatefileHs(), kind, pairs);
  d.setTop(std::string(ring.name()));
  nl::flattenTop(d);
  sim::Simulator s(d.top(), gatefileHs());
  std::vector<sim::Time> rises;
  s.watchNet("g0", [&](sim::Time t, sim::Val v) {
    if (v == sim::Val::k1) rises.push_back(t);
  });
  s.setInput("rst", sim::Val::k1);
  s.run(sim::nsToPs(5));
  s.setInput("rst", sim::Val::k0);
  s.run(sim::nsToPs(300));
  if (rises.size() < 4) return -1;
  return static_cast<double>(rises.back() - rises[1]) /
         static_cast<double>(rises.size() - 2) / 1000.0;
}

}  // namespace

int main() {
  header("Ablation: latch controller protocols");

  row("  master/slave ring verification (speed-independent, all gate "
      "delays):");
  row("  %-18s %6s %12s %10s %10s", "controller", "pairs", "states",
      "deadlock", "hazard");
  struct Case {
    async::ControllerKind kind;
    const char* name;
    int pairs;
  };
  for (const Case& c :
       {Case{async::ControllerKind::kSimple, "simple", 1},
        Case{async::ControllerKind::kSemiDecoupled, "semi-decoupled", 1},
        Case{async::ControllerKind::kSemiDecoupled, "semi-decoupled", 2},
        Case{async::ControllerKind::kSemiDecoupled, "semi-decoupled", 3},
        Case{async::ControllerKind::kFullyDecoupled, "fully-decoupled", 1},
        Case{async::ControllerKind::kFullyDecoupled, "fully-decoupled", 2}}) {
    stgv::SiResult r = verifyRing(c.kind, c.pairs);
    row("  %-18s %6d %12zu %10s %10s", c.name, c.pairs, r.states,
        r.deadlock_free ? "none" : "DEADLOCK",
        r.hazard_free ? "free" : "HAZARD");
  }
  row("  -> the simple (Muller) controller deadlocks in the master/slave");
  row("     configuration; decoupling is required (thesis §2.2).");

  row("\n  bare ring oscillation period (no datapath, no delay elements):");
  for (int pairs : {1, 2, 4}) {
    row("  semi-decoupled,  %d pair(s): %7.3f ns", pairs,
        ringPeriod(async::ControllerKind::kSemiDecoupled, pairs));
  }
  for (int pairs : {1, 2}) {
    row("  fully-decoupled, %d pair(s): %7.3f ns", pairs,
        ringPeriod(async::ControllerKind::kFullyDecoupled, pairs));
  }

  row("\n  fully-decoupled vs semi-decoupled on a two-region pipeline");
  row("  (Fig 2.4 at gate level: more concurrency, flow-equivalence lost):");
  for (auto kind : {async::ControllerKind::kSemiDecoupled,
                    async::ControllerKind::kFullyDecoupled}) {
    nl::Design d;
    designs::buildPipe2(d, gatefileHs(), 8);
    nl::Design sync_copy;
    nl::cloneModule(sync_copy, *d.findModule("pipe2"));
    sync_copy.setTop("pipe2");
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    opt.control.controller = kind;
    core::DesyncResult res =
        core::desynchronize(d, *d.findModule("pipe2"), gatefileHs(), opt);
    auto golden = runSync(sync_copy.top(), gatefileHs(),
                          res.sync_min_period_ns * 2, 40);
    DesyncRun run = runDesync(*d.findModule("pipe2"), gatefileHs(),
                              80 * res.sync_min_period_ns);
    sim::FlowEqReport fe = sim::checkFlowEquivalence(*golden, *run.sim);
    row("  %-16s period %7.3f ns   flow-equivalent: %s",
        kind == async::ControllerKind::kSemiDecoupled ? "semi-decoupled"
                                                      : "fully-decoupled",
        run.eff_period_ns, fe.equivalent ? "yes" : "NO");
  }

  row("\n  delay-element margin sweep on the worst-case-every-cycle design");
  row("  (when does the matched delay become too short?):");
  row("  %-8s %12s %8s", "margin", "period(ns)", "flow-eq");
  for (double margin : {1.3, 1.15, 1.0, 0.6, 0.3, 0.05}) {
    nl::Design d;
    designs::buildLongPath(d, gatefileHs(), 60);
    nl::Design sync_copy;
    nl::cloneModule(sync_copy, *d.findModule("longpath"));
    sync_copy.setTop("longpath");
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    opt.control.margin = margin;
    core::DesyncResult res =
        core::desynchronize(d, *d.findModule("longpath"), gatefileHs(), opt);
    auto golden =
        runSync(sync_copy.top(), gatefileHs(), res.sync_min_period_ns * 2, 40);
    DesyncRun run = runDesync(*d.findModule("longpath"), gatefileHs(),
                              60 * res.sync_min_period_ns);
    sim::FlowEqReport fe = sim::checkFlowEquivalence(*golden, *run.sim);
    row("  %-8.2f %12.3f %8s", margin, run.eff_period_ns,
        fe.equivalent ? "yes" : "NO");
  }
  return 0;
}
