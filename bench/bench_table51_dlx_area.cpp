// Table 5.1 — area results for synchronous and desynchronized DLX.
//
// Reproduces the structure of the paper's table: post-synthesis and
// post-layout rows with the desynchronization overhead percentage, next to
// the published reference values.  Absolute numbers differ (synthetic
// library, in-repo synthesis/backend); the shape to check is: overhead
// dominated by the sequential substitution, modest combinational overhead,
// post-layout growth from buffer trees, slightly lower utilization.
#include "harness.h"
#include "pnr/pnr.h"

namespace pnr = desync::pnr;
using namespace bench;

namespace {

struct Sides {
  pnr::PnrResult sync_r, desync_r;
};

void printRow(const char* name, double a, double b, const char* paper) {
  double ovh = a > 0 ? (b - a) / a * 100.0 : 0.0;
  row("  %-28s %12.0f %12.0f %8.2f%%   (paper: %s)", name, a, b, ovh, paper);
}

}  // namespace

int main() {
  header("Table 5.1: area results for synchronous and desynchronized DLX");

  DlxPair pair = makeDlxPair();
  const lib::Gatefile& gf = *pair.gf;

  pnr::PnrOptions sync_opt;  // clock tree on clk
  pnr::PnrResult s = pnr::placeAndRoute(pair.syncModule(), gf, sync_opt);
  pnr::PnrOptions desync_opt;
  desync_opt.clock_ports = {};  // enable trees already inserted by the flow
  pnr::PnrResult d = pnr::placeAndRoute(pair.desyncModule(), gf, desync_opt);

  row("  regions: %d (four pipeline stages + input group, thesis Fig 5.2)",
      pair.report.regions.n_groups);

  // Sequential-logic attribution as the paper does for the ARM (§5.3.1):
  // the flip-flop substitution glue counts toward the sequential overhead.
  auto seqWithGlue = [&gf](nl::Module& m) {
    static const std::vector<std::string> kGlue = {
        "_Lm",  "_Ls",  "_acm", "_acs",  "_agm",  "_ags",  "_apm",
        "_aps", "_apgm", "_apgs", "_scmux", "_syr", "_sys", "_qninv"};
    double area = 0;
    m.forEachCell([&](nl::CellId id) {
      const auto* c = gf.library().findCell(std::string(m.cellType(id)));
      if (c == nullptr) return;
      bool seq = c->kind != lib::CellKind::kCombinational;
      if (!seq) {
        std::string name(m.cellName(id));
        for (const std::string& suffix : kGlue) {
          auto pos = name.find(suffix);
          if (pos != std::string::npos) {
            seq = true;
            break;
          }
        }
      }
      if (seq) area += c->area;
    });
    return area;
  };
  const double s_seq = seqWithGlue(pair.syncModule());
  const double d_seq = seqWithGlue(pair.desyncModule());

  row("  %-28s %12s %12s %9s", "post-synthesis", "DLX", "DDLX", "overhead");
  printRow("# nets", double(s.nets_pre), double(d.nets_pre), "+11.46%");
  printRow("# cells", double(s.cells_pre), double(d.cells_pre), "+11.41%");
  printRow("cell area (um^2)", s.cell_area_pre, d.cell_area_pre, "+6.52%");
  printRow("combinational (um^2)", s.cell_area_pre - s_seq,
           d.cell_area_pre - d_seq, "+2.05%");
  printRow("sequential+glue (um^2)", s_seq, d_seq, "+17.66%");

  row("  %-28s %12s %12s %9s", "post-layout", "DLX", "DDLX", "overhead");
  printRow("# nets", double(s.nets_post), double(d.nets_post), "+11.77%");
  printRow("# cells", double(s.cells_post), double(d.cells_post), "+12.24%");
  printRow("std cell area (um^2)", s.std_cell_area, d.std_cell_area,
           "+8.79%");
  printRow("core size (um^2)", s.core_size, d.core_size, "+13.44%");
  row("  %-28s %11.2f%% %11.2f%%             (paper: 95.06%% / 91.16%%)",
      "core utilization", s.utilization * 100, d.utilization * 100);

  row("\n  notes: sequential-dominated overhead reproduced; our generator");
  row("  resets every datapath flip-flop (async clear), so the Fig 3.1c");
  row("  glue is heavier than the paper's DLX — see EXPERIMENTS.md.");
  return 0;
}
