// Synchronous-side simulation throughput: event-driven engine vs the
// compiled 64-lane bit-parallel engine (sim/bitsim) on the two CPU case
// studies (DLX and the ARM-class design).
//
// The workload is the flow-equivalence golden side: 64 independent
// synchronous runs of N clock cycles each.  The event engine runs 64
// separate simulators; bitsim compiles one plan and runs all 64 as lanes
// of a single pass.  "Vectors" are lane-cycles (64 x N for both engines),
// so vectors/sec is directly comparable.
//
// The bench FAILS (exit 1) when the engines' capture tapes differ — the
// speedup is only meaningful while the results are byte-identical — or
// when the measured speedup drops below the 10x acceptance floor on
// either design.  Timings go to BENCH_bitsim.json; CI publishes the
// speedup line to the step summary.
#include <string>

#include "harness.h"
#include "sim/bitsim/bitsim.h"
#include "sim/stimulus.h"

using namespace bench;

namespace bs = desync::sim::bitsim;

namespace {

constexpr int kCycles = 100;

std::string digest(const std::vector<sim::CaptureLog>& logs) {
  std::string d;
  for (const sim::CaptureLog& log : logs) {
    d += log.element;
    d += '=';
    for (sim::Val v : log.values) d += sim::toChar(v);
    d += '\n';
  }
  return d;
}

struct EngineResult {
  double event_ms = 0.0;
  double bitsim_ms = 0.0;
  double compile_ms = 0.0;
  std::size_t cells = 0;
  std::uint32_t levels = 0;
  bool identical = false;
  [[nodiscard]] double speedup() const {
    return bitsim_ms > 0 ? event_ms / bitsim_ms : 0;
  }
  [[nodiscard]] double eventVps() const {
    return event_ms > 0 ? 64.0 * kCycles / (event_ms / 1000.0) : 0;
  }
  [[nodiscard]] double bitsimVps() const {
    return bitsim_ms > 0 ? 64.0 * kCycles / (bitsim_ms / 1000.0) : 0;
  }
};

EngineResult runDesign(const designs::CpuConfig& config, int repeats) {
  nl::Design d;
  nl::Module& m = designs::buildCpu(d, gatefileHs(), config);
  const lib::BoundModule bound(m, gatefileHs());

  EngineResult r;
  m.forEachCell([&](nl::CellId) { ++r.cells; });

  sim::SyncStimulus st;
  st.half_period_ns = 5.0;
  st.cycles = kCycles;

  // Event engine: 64 independent runs (the FE golden side before bitsim).
  std::string event_digest;
  r.event_ms = measureRepeated(repeats, [&] {
    for (int lane = 0; lane < 64; ++lane) {
      sim::Simulator s(bound);
      sim::runSyncStimulus(s, st);
      if (lane == 0) event_digest = digest(s.captures());
    }
  }).min_ms;

  // Bit-parallel engine: one compile, 64 lanes per pass.
  const bs::BitPlan plan = bs::compilePlan(bound);
  r.compile_ms = plan.compile_ms;
  r.levels = plan.n_levels;
  std::string bitsim_digest;
  r.bitsim_ms = measureRepeated(repeats, [&] {
    bs::BitSim s(plan);
    sim::runSyncStimulus(s, st);
    bitsim_digest = digest(s.captures(63));
  }).min_ms;

  r.identical = !event_digest.empty() && event_digest == bitsim_digest;
  return r;
}

}  // namespace

int main() {
  header("Bit-parallel sync simulation throughput (event vs bitsim)");
  const int repeats = benchRepeats(2);
  row("  64 lanes x %d cycles per measurement; repeats: %d", kCycles,
      repeats);

  const EngineResult dlx = runDesign(designs::dlxConfig(), repeats);
  const EngineResult arm = runDesign(designs::armClassConfig(), repeats);

  row("  %-10s %7s %7s %12s %12s %10s %9s %6s", "design", "cells", "levels",
      "event (ms)", "bitsim (ms)", "vec/s", "speedup", "same?");
  const struct {
    const char* name;
    const EngineResult* r;
  } rows[] = {{"dlx", &dlx}, {"arm_class", &arm}};
  bool ok = true;
  for (const auto& e : rows) {
    row("  %-10s %7zu %7u %12.2f %12.2f %10.0f %8.1fx %6s", e.name,
        e.r->cells, e.r->levels, e.r->event_ms, e.r->bitsim_ms,
        e.r->bitsimVps(), e.r->speedup(), e.r->identical ? "yes" : "NO");
    if (!e.r->identical) {
      row("  MISMATCH: %s capture tapes differ between engines", e.name);
      ok = false;
    }
    if (e.r->speedup() < 10.0) {
      row("  BELOW FLOOR: %s speedup %.1fx < 10x acceptance", e.name,
          e.r->speedup());
      ok = false;
    }
  }

  RepeatedTiming t;
  t.runs_ms = {dlx.bitsim_ms, arm.bitsim_ms};
  t.min_ms = std::min(dlx.bitsim_ms, arm.bitsim_ms);
  t.median_ms = arm.bitsim_ms;
  writeBenchJson(
      "bitsim", t,
      {{"cycles", static_cast<double>(kCycles)},
       {"lanes", 64.0},
       {"dlx_event_ms", dlx.event_ms},
       {"dlx_bitsim_ms", dlx.bitsim_ms},
       {"dlx_compile_ms", dlx.compile_ms},
       {"dlx_event_vectors_per_sec", dlx.eventVps()},
       {"dlx_bitsim_vectors_per_sec", dlx.bitsimVps()},
       {"dlx_speedup", dlx.speedup()},
       {"arm_event_ms", arm.event_ms},
       {"arm_bitsim_ms", arm.bitsim_ms},
       {"arm_compile_ms", arm.compile_ms},
       {"arm_event_vectors_per_sec", arm.eventVps()},
       {"arm_bitsim_vectors_per_sec", arm.bitsimVps()},
       {"arm_speedup", arm.speedup()}});
  if (ok) {
    row("\n  bitsim speedup: dlx %.1fx, arm_class %.1fx (floor 10x)",
        dlx.speedup(), arm.speedup());
  }
  return ok ? 0 : 1;
}
