// Tool runtime — drdesync scaling with design size (google-benchmark).
//
// The original drdesync was ~10k lines of C operating on industrial
// netlists; this measures how the reimplementation's full conversion
// (grouping, substitution, STA sizing, control-network insertion) scales
// with cell count.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/desync.h"
#include "designs/cpu.h"
#include "designs/small.h"
#include "liberty/stdlib90.h"
#include "trace/trace.h"

namespace core = desync::core;
namespace designs = desync::designs;
namespace lib = desync::liberty;
namespace nl = desync::netlist;

namespace {

const lib::Gatefile& gf() {
  static const lib::Library l = lib::makeStdLib90(lib::LibVariant::kHighSpeed);
  static const lib::Gatefile g(l);
  return g;
}

/// Republishes the flow's per-pass wall times (accumulated over the
/// benchmark's iterations) as benchmark counters, so pass-level regressions
/// are visible directly in the benchmark output.
void addFlowCounters(benchmark::State& state, const core::FlowReport& flow) {
  for (const core::PassStat& p : flow.passes()) {
    benchmark::Counter& c = state.counters[p.name + "_ms"];
    c.value += p.wall_ms;
    c.flags = benchmark::Counter::kAvgIterations;
  }
}

void BM_DesyncCounter(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    nl::Design d;
    designs::buildCounter(d, gf(), bits);
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    state.ResumeTiming();
    core::DesyncResult r =
        core::desynchronize(d, *d.findModule("counter"), gf(), opt);
    benchmark::DoNotOptimize(r.regions.n_groups);
    addFlowCounters(state, r.flow);
  }
  state.SetLabel(std::to_string(bits) + " bits");
}
BENCHMARK(BM_DesyncCounter)->Arg(8)->Arg(32)->Arg(64);

void BM_DesyncDlx(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    nl::Design d;
    designs::buildCpu(d, gf(), designs::dlxConfig());
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    state.ResumeTiming();
    core::DesyncResult r =
        core::desynchronize(d, *d.findModule("dlx"), gf(), opt);
    benchmark::DoNotOptimize(r.regions.n_groups);
    addFlowCounters(state, r.flow);
  }
  state.SetLabel("~10k cells");
}
BENCHMARK(BM_DesyncDlx)->Unit(benchmark::kMillisecond);

/// Same flow with `--trace` active: the delta against BM_DesyncDlx is the
/// tracer's overhead (acceptance: < 2% on a traced run, 0 when disabled —
/// the disabled cost is one relaxed load + branch per instrumentation
/// site).  The trace is restarted each iteration so every run records a
/// full event stream, like a real traced invocation.
void BM_DesyncDlxTraced(benchmark::State& state) {
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "bench_dlx.trace.json")
          .string();
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    nl::Design d;
    designs::buildCpu(d, gf(), designs::dlxConfig());
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    desync::trace::start(trace_path);
    state.ResumeTiming();
    core::DesyncResult r =
        core::desynchronize(d, *d.findModule("dlx"), gf(), opt);
    benchmark::DoNotOptimize(r.regions.n_groups);
    state.PauseTiming();
    events += desync::trace::finish().events;  // drain outside the timing
    state.ResumeTiming();
    addFlowCounters(state, r.flow);
  }
  state.counters["trace_events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
  state.SetLabel("~10k cells, traced");
}
BENCHMARK(BM_DesyncDlxTraced)->Unit(benchmark::kMillisecond);

void BM_DesyncArmClass(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    nl::Design d;
    designs::buildCpu(d, gf(), designs::armClassConfig());
    core::DesyncOptions opt;
    opt.control.reset_port = "rst_n";
    opt.control.reset_active_low = true;
    opt.manual_seq_groups = {{""}};
    state.ResumeTiming();
    core::DesyncResult r =
        core::desynchronize(d, *d.findModule("armlike"), gf(), opt);
    benchmark::DoNotOptimize(r.regions.n_groups);
    addFlowCounters(state, r.flow);
  }
  state.SetLabel("~20k cells");
}
BENCHMARK(BM_DesyncArmClass)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
