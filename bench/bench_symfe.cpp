// Flow-equivalence route comparison: symbolic per-register proving
// (sim/symfe, `--fe-mode prove`) vs the sampling vector route
// (`--fe-check`) on the two CPU case studies (DLX four-stage pipeline,
// ARM-class single-group scan design).
//
// The two routes answer the same question with different strength: the
// vector route samples stored-value sequences over stimulus batches, the
// prover covers the whole input space per register (plus the token-flow
// protocol admissibility check) but is timing-blind.  The bench measures
// the wall time of each route on an already-flowed pair and FAILS (exit 1)
// when the prover leaves any register refuted or skipped, or when the
// vector route disagrees — the PR's acceptance bar for the case studies.
// Timings go to BENCH_symfe.json; CI publishes registers-proved and
// solver-conflict counts to the step summary.
#include <string>
#include <vector>

#include "dft/scan.h"
#include "harness.h"
#include "sim/stimulus.h"
#include "sim/symfe/symfe.h"

namespace dft = desync::dft;
namespace symfe = desync::sim::symfe;
using namespace bench;

namespace {

constexpr std::size_t kBatches = 8;

struct Pair {
  std::string name;
  nl::Design sync_design;
  nl::Design desync_design;
  std::string top;
  const lib::Gatefile* gf = nullptr;
  core::DesyncResult res;
};

Pair makeDlx() {
  Pair p;
  p.name = "dlx";
  p.top = "dlx";
  p.gf = &gatefileHs();
  designs::buildCpu(p.desync_design, *p.gf, designs::dlxConfig());
  nl::cloneModule(p.sync_design, *p.desync_design.findModule("dlx"));
  p.sync_design.setTop("dlx");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.manual_seq_groups = dlxStageRegions();
  p.res = core::desynchronize(p.desync_design,
                              *p.desync_design.findModule("dlx"), *p.gf,
                              opt);
  return p;
}

Pair makeArmPair() {
  Pair p;
  p.name = "arm_class";
  p.top = "armlike";
  p.gf = &gatefileLl();
  designs::buildCpu(p.desync_design, *p.gf, designs::armClassConfig());
  dft::insertScan(*p.desync_design.findModule("armlike"), *p.gf);
  nl::cloneModule(p.sync_design, *p.desync_design.findModule("armlike"));
  p.sync_design.setTop("armlike");
  core::DesyncOptions opt;
  opt.control.reset_port = "rst_n";
  opt.control.reset_active_low = true;
  opt.manual_seq_groups = {{""}};  // single group, as in the paper (§5.3)
  opt.grouping.false_path_nets = {"scan_en"};
  p.res = core::desynchronize(p.desync_design,
                              *p.desync_design.findModule("armlike"), *p.gf,
                              opt);
  return p;
}

struct RouteResult {
  std::size_t registers = 0;
  std::size_t proved = 0;
  std::size_t refuted = 0;
  std::size_t skipped = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  bool prove_ok = false;
  bool vector_ok = false;
  std::size_t values_compared = 0;
  double vector_ms = 0.0;
  double prove_ms = 0.0;
};

RouteResult runDesign(Pair& p, int repeats) {
  RouteResult r;
  const nl::Module& sync_top = p.sync_design.top();
  const nl::Module& converted = *p.desync_design.findModule(p.top);
  const lib::BoundModule sync_bound(sync_top, *p.gf);
  const lib::BoundModule desync_bound(converted, *p.gf);

  // Vector route: golden synchronous batches on the bit-parallel engine,
  // desynchronized side event-simulated per batch — the fe_check pass's
  // exact workload (core/desync.cpp).
  sim::SyncStimulus st;
  st.half_period_ns = std::max(p.res.sync_min_period_ns, 0.1);
  st.cycles = 10;
  auto run_desync = [&](std::size_t b) {
    auto s = std::make_unique<sim::Simulator>(desync_bound);
    s->setInput(st.clock_port, sim::Val::k0);
    s->setInput(st.reset_port, sim::Val::k0);
    s->run(s->now() + sim::nsToPs(2 * st.reset_ns));
    s->setInput(st.reset_port, sim::Val::k1);
    s->run(s->now() + sim::nsToPs(sim::feBatch(st, b).window_ns));
    return s;
  };
  sim::FlowEqBatchReport vec;
  r.vector_ms = measureRepeated(repeats, [&] {
    const std::vector<std::vector<sim::CaptureLog>> sync_batches =
        sim::goldenSyncBatches(sync_bound, st, kBatches,
                               sim::SyncEngine::kBitsim);
    vec = sim::checkFlowEquivalenceBatches(sync_batches, run_desync);
  }).min_ms;
  r.vector_ok = vec.equivalent;
  r.values_compared = vec.values_compared;

  // Prove route: per-register projection miters + protocol check.
  symfe::SymfeOptions so;
  symfe::ProtocolInput pi;
  pi.n_groups = p.res.regions.n_groups;
  for (const auto& cells : p.res.regions.seq_cells) {
    pi.active.push_back(!cells.empty());
  }
  pi.preds = p.res.ddg.preds;
  so.protocol = std::move(pi);
  symfe::SymfeReport rep;
  r.prove_ms = measureRepeated(repeats, [&] {
    rep = symfe::proveFlowEquivalence(sync_bound, desync_bound, so);
  }).min_ms;
  r.registers = rep.registers.size();
  r.proved = rep.proved;
  r.refuted = rep.refuted;
  r.skipped = rep.skipped;
  r.conflicts = rep.conflicts;
  r.decisions = rep.decisions;
  r.prove_ok = rep.ok();
  if (!r.prove_ok) {
    for (const symfe::RegisterProof& reg : rep.registers) {
      if (reg.verdict == symfe::RegVerdict::kProved) continue;
      row("    %s %s: %s",
          reg.verdict == symfe::RegVerdict::kRefuted ? "REFUTED" : "SKIPPED",
          reg.name.c_str(), reg.reason.c_str());
    }
    if (!rep.protocol.admissible) {
      row("    PROTOCOL: %s", rep.protocol.violation.c_str());
    }
  }
  return r;
}

}  // namespace

int main() {
  header("Symbolic FE proving vs vector-route checking (prove vs sim)");
  const int repeats = benchRepeats(3);
  row("  %zu vector batches vs full per-register proofs; repeats: %d",
      kBatches, repeats);

  Pair dlx_pair = makeDlx();
  Pair arm_pair = makeArmPair();

  RouteResult dlx = runDesign(dlx_pair, repeats);
  RouteResult arm = runDesign(arm_pair, repeats);

  row("  %-10s %9s %8s %9s %9s %12s %12s", "design", "registers", "proved",
      "conflicts", "values", "vector (ms)", "prove (ms)");
  const struct {
    const char* name;
    const RouteResult* r;
  } rows[] = {{"dlx", &dlx}, {"arm_class", &arm}};
  bool ok = true;
  for (const auto& e : rows) {
    row("  %-10s %9zu %8zu %9llu %9zu %12.2f %12.2f", e.name, e.r->registers,
        e.r->proved, static_cast<unsigned long long>(e.r->conflicts),
        e.r->values_compared, e.r->vector_ms, e.r->prove_ms);
    if (!e.r->prove_ok) {
      row("  FAIL: %s prove route left %zu refuted / %zu skipped", e.name,
          e.r->refuted, e.r->skipped);
      ok = false;
    }
    if (!e.r->vector_ok) {
      row("  FAIL: %s vector route found mismatches", e.name);
      ok = false;
    }
  }

  RepeatedTiming t;
  t.runs_ms = {dlx.prove_ms, arm.prove_ms};
  t.min_ms = std::min(dlx.prove_ms, arm.prove_ms);
  t.median_ms = arm.prove_ms;
  writeBenchJson(
      "symfe", t,
      {{"batches", static_cast<double>(kBatches)},
       {"dlx_registers", static_cast<double>(dlx.registers)},
       {"dlx_proved", static_cast<double>(dlx.proved)},
       {"dlx_conflicts", static_cast<double>(dlx.conflicts)},
       {"dlx_decisions", static_cast<double>(dlx.decisions)},
       {"dlx_vector_ms", dlx.vector_ms},
       {"dlx_prove_ms", dlx.prove_ms},
       {"arm_registers", static_cast<double>(arm.registers)},
       {"arm_proved", static_cast<double>(arm.proved)},
       {"arm_conflicts", static_cast<double>(arm.conflicts)},
       {"arm_decisions", static_cast<double>(arm.decisions)},
       {"arm_vector_ms", arm.vector_ms},
       {"arm_prove_ms", arm.prove_ms}});
  if (ok) {
    row("\n  all registers proved: dlx %zu/%zu, arm_class %zu/%zu",
        dlx.proved, dlx.registers, arm.proved, arm.registers);
  }
  return ok ? 0 : 1;
}
